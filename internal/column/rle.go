package column

import "sort"

// RLEInt64Column is a run-length-encoded integer column: maximal runs of
// equal values stored as one (value, cumulative end) pair each. RLE is the
// natural encoding for sorted or clustered attributes (order keys, group
// ids); aggregation consumes a whole run in O(1) and predicates decide a
// run with one comparison, so work scales with the number of runs, not the
// number of rows. Like the bit-packed columns it supports zero-copy Slice
// views for the morsel scheduler and re-encodes on Gather.
type RLEInt64Column struct {
	name   string
	vals   []int64 // one value per run
	ends   []int32 // cumulative exclusive end of each run, ascending
	off    int     // first logical row, in run coordinates
	length int
}

// CompressRLE run-length-encodes values into an RLEInt64Column.
func CompressRLE(name string, values []int64) *RLEInt64Column {
	c := &RLEInt64Column{name: name, length: len(values)}
	for i, v := range values {
		if len(c.vals) == 0 || c.vals[len(c.vals)-1] != v {
			c.vals = append(c.vals, v)
			c.ends = append(c.ends, int32(i))
		}
		c.ends[len(c.ends)-1] = int32(i + 1)
	}
	return c
}

// CompressInt64RLE run-length-encodes a plain integer column.
func CompressInt64RLE(c *Int64Column) *RLEInt64Column { return CompressRLE(c.Name(), c.Values) }

// Name returns the attribute name.
func (c *RLEInt64Column) Name() string { return c.name }

// Type returns Int64: the logical type is unchanged by the encoding.
func (c *RLEInt64Column) Type() Type { return Int64 }

// Len returns the number of rows.
func (c *RLEInt64Column) Len() int { return c.length }

// Bytes returns the real encoded size of the runs this view overlaps:
// 8 bytes of value plus 4 bytes of end offset per run.
func (c *RLEInt64Column) Bytes() int64 {
	if c.length == 0 {
		return 0
	}
	first := c.run(0)
	last := c.run(c.length - 1)
	return int64(last-first+1) * 12
}

// run returns the index of the run containing local row i.
func (c *RLEInt64Column) run(i int) int {
	base := c.off + i
	return sort.Search(len(c.ends), func(k int) bool { return int(c.ends[k]) > base })
}

// Value returns the i-th value.
func (c *RLEInt64Column) Value(i int) int64 { return c.vals[c.run(i)] }

// RunEnd returns the exclusive end (in local row coordinates, clipped to the
// view) of the maximal equal-value run containing row i. Aggregation uses it
// to consume a run per step instead of a row per step.
func (c *RLEInt64Column) RunEnd(i int) int {
	e := int(c.ends[c.run(i)]) - c.off
	if e > c.length {
		e = c.length
	}
	return e
}

// Runs calls fn(value, lo, hi) for each maximal run overlapping local rows
// [lo, hi), clipped to that window, in ascending row order.
func (c *RLEInt64Column) Runs(lo, hi int, fn func(v int64, lo, hi int)) {
	if lo >= hi {
		return
	}
	for r := c.run(lo); lo < hi; r++ {
		end := int(c.ends[r]) - c.off
		if end > hi {
			end = hi
		}
		fn(c.vals[r], lo, end)
		lo = end
	}
}

// Slice returns a zero-copy view of rows [lo, hi).
func (c *RLEInt64Column) Slice(lo, hi int) *RLEInt64Column {
	return &RLEInt64Column{name: c.name, vals: c.vals, ends: c.ends, off: c.off + lo, length: hi - lo}
}

// Gather re-encodes the addressed rows as runs, preserving the encoding on
// late-materialized paths. Adjacent equal survivors merge into one run.
func (c *RLEInt64Column) Gather(pos []int32) Column {
	out := &RLEInt64Column{name: c.name, length: len(pos)}
	for i, p := range pos {
		v := c.Value(int(p))
		if len(out.vals) == 0 || out.vals[len(out.vals)-1] != v {
			out.vals = append(out.vals, v)
			out.ends = append(out.ends, int32(i))
		}
		out.ends[len(out.ends)-1] = int32(i + 1)
	}
	return out
}

// Decompress materializes the whole column (metered; see DecompressedBytes).
func (c *RLEInt64Column) Decompress() *Int64Column {
	out := make([]int64, c.length)
	c.Runs(0, c.length, func(v int64, lo, hi int) {
		for i := lo; i < hi; i++ {
			out[i] = v
		}
	})
	noteDecompressed(int64(c.length) * 8)
	return NewInt64(c.name, out)
}

// CompressionRatio returns plain bytes ÷ encoded bytes.
func (c *RLEInt64Column) CompressionRatio() float64 {
	return float64(c.length*8) / float64(c.Bytes())
}

// ScanCmp appends the local positions satisfying (value op v) to out,
// deciding each run with a single comparison.
func (c *RLEInt64Column) ScanCmp(op ScanOp, v int64, out PosList) PosList {
	c.Runs(0, c.length, func(rv int64, lo, hi int) {
		if cmpMatches(op, rv, v) {
			for i := lo; i < hi; i++ {
				out = append(out, int32(i))
			}
		}
	})
	return out
}

// ScanRange appends the local positions with lo ≤ value ≤ hi to out.
func (c *RLEInt64Column) ScanRange(lo, hi int64, out PosList) PosList {
	c.Runs(0, c.length, func(rv int64, rlo, rhi int) {
		if rv >= lo && rv <= hi {
			for i := rlo; i < rhi; i++ {
				out = append(out, int32(i))
			}
		}
	})
	return out
}
