package column

import (
	"math/rand"
	"reflect"
	"testing"
)

// rleTestValues builds a clustered value set with real runs plus some
// singleton runs at the edges.
func rleTestValues(seed int64, n int) []int64 {
	rng := rand.New(rand.NewSource(seed))
	vals := make([]int64, 0, n)
	for len(vals) < n {
		v := int64(rng.Intn(9))
		k := 1 + rng.Intn(17)
		for j := 0; j < k && len(vals) < n; j++ {
			vals = append(vals, v)
		}
	}
	return vals
}

func TestCompressRLERoundtrip(t *testing.T) {
	vals := rleTestValues(1, 1000)
	c := CompressRLE("g", vals)
	if c.Len() != len(vals) {
		t.Fatalf("Len = %d, want %d", c.Len(), len(vals))
	}
	for i, want := range vals {
		if got := c.Value(i); got != want {
			t.Fatalf("Value(%d) = %d, want %d", i, got, want)
		}
	}
	dec := c.Decompress()
	if !reflect.DeepEqual(dec.Values, vals) {
		t.Fatal("Decompress does not round-trip")
	}
	if dec.Name() != "g" {
		t.Fatalf("decompressed name %q", dec.Name())
	}
}

func TestRLESliceViews(t *testing.T) {
	vals := rleTestValues(2, 800)
	c := CompressRLE("g", vals)
	// Slices at arbitrary offsets — including ones splitting runs — must
	// read the right window, and slices of slices must compose.
	for _, w := range [][2]int{{0, 800}, {0, 1}, {37, 41}, {100, 700}, {799, 800}, {250, 250}} {
		lo, hi := w[0], w[1]
		s := c.Slice(lo, hi)
		if s.Len() != hi-lo {
			t.Fatalf("slice [%d,%d): Len = %d", lo, hi, s.Len())
		}
		for i := 0; i < s.Len(); i++ {
			if got := s.Value(i); got != vals[lo+i] {
				t.Fatalf("slice [%d,%d): Value(%d) = %d, want %d", lo, hi, i, got, vals[lo+i])
			}
		}
	}
	ss := c.Slice(100, 700).Slice(50, 150)
	for i := 0; i < ss.Len(); i++ {
		if got := ss.Value(i); got != vals[150+i] {
			t.Fatalf("slice-of-slice: Value(%d) = %d, want %d", i, got, vals[150+i])
		}
	}
}

// TestRLERunEndClipping: RunEnd is exclusive, in local coordinates, and never
// exceeds the view even when the underlying run does.
func TestRLERunEndClipping(t *testing.T) {
	vals := []int64{5, 5, 5, 5, 7, 7, 9}
	c := CompressRLE("g", vals)
	for i, want := range []int{4, 4, 4, 4, 6, 6, 7} {
		if got := c.RunEnd(i); got != want {
			t.Fatalf("RunEnd(%d) = %d, want %d", i, got, want)
		}
	}
	// View [1,3) sits inside the first run: the clipped end is the view end.
	s := c.Slice(1, 3)
	if got := s.RunEnd(0); got != 2 {
		t.Fatalf("view RunEnd(0) = %d, want 2", got)
	}
	// View [2,6) splits two runs.
	s = c.Slice(2, 6)
	if got := s.RunEnd(0); got != 2 {
		t.Fatalf("split view RunEnd(0) = %d, want 2", got)
	}
	if got := s.RunEnd(2); got != 4 {
		t.Fatalf("split view RunEnd(2) = %d, want 4", got)
	}
}

// TestRLERunsWindows: Runs visits each maximal run clipped to the window, in
// order, covering the window exactly.
func TestRLERunsWindows(t *testing.T) {
	vals := rleTestValues(3, 600)
	c := CompressRLE("g", vals)
	for _, w := range [][2]int{{0, 600}, {13, 587}, {100, 101}, {300, 300}} {
		lo, hi := w[0], w[1]
		next := lo
		c.Runs(lo, hi, func(v int64, rlo, rhi int) {
			if rlo != next || rhi <= rlo || rhi > hi {
				t.Fatalf("window [%d,%d): run [%d,%d) out of order or bounds", lo, hi, rlo, rhi)
			}
			for i := rlo; i < rhi; i++ {
				if vals[i] != v {
					t.Fatalf("window [%d,%d): run value %d at row %d, want %d", lo, hi, v, i, vals[i])
				}
			}
			next = rhi
		})
		if next != hi && lo < hi {
			t.Fatalf("window [%d,%d): runs stopped at %d", lo, hi, next)
		}
	}
}

// TestRLEGatherPreservesEncoding: Gather stays RLE, merges adjacent equal
// survivors, and reads back the addressed rows exactly — including through a
// view.
func TestRLEGatherPreservesEncoding(t *testing.T) {
	vals := rleTestValues(4, 500)
	c := CompressRLE("g", vals)
	rng := rand.New(rand.NewSource(5))
	pos := make(PosList, 300)
	for i := range pos {
		pos[i] = int32(rng.Intn(len(vals)))
	}
	g, ok := c.Gather(pos).(*RLEInt64Column)
	if !ok {
		t.Fatalf("Gather returned %T, want *RLEInt64Column", c.Gather(pos))
	}
	if g.Len() != len(pos) {
		t.Fatalf("gathered Len = %d, want %d", g.Len(), len(pos))
	}
	for i, p := range pos {
		if got := g.Value(i); got != vals[p] {
			t.Fatalf("gathered Value(%d) = %d, want %d", i, got, vals[p])
		}
	}
	// Through a view: positions are view-local.
	s := c.Slice(50, 450)
	vg := s.Gather(PosList{0, 0, 399, 200})
	want := []int64{vals[50], vals[50], vals[449], vals[250]}
	for i, wv := range want {
		if got := vg.(*RLEInt64Column).Value(i); got != wv {
			t.Fatalf("view gather Value(%d) = %d, want %d", i, got, wv)
		}
	}
}

// TestRLEScanAgainstBruteForce: ScanCmp and ScanRange agree with the
// value-at-a-time reference on every operator, including through views that
// split runs.
func TestRLEScanAgainstBruteForce(t *testing.T) {
	vals := rleTestValues(6, 900)
	c := CompressRLE("g", vals)
	cols := []*RLEInt64Column{c, c.Slice(33, 850)}
	for ci, col := range cols {
		base := 0
		if ci == 1 {
			base = 33
		}
		for _, v := range []int64{-1, 0, 3, 4, 8, 9} {
			for op := ScanEQ; op <= ScanGE; op++ {
				var want PosList
				for i := 0; i < col.Len(); i++ {
					if cmpMatches(op, vals[base+i], v) {
						want = append(want, int32(i))
					}
				}
				got := col.ScanCmp(op, v, nil)
				if !reflect.DeepEqual(got, want) {
					t.Fatalf("col %d: ScanCmp(op=%d, v=%d): %d positions, want %d", ci, op, v, len(got), len(want))
				}
			}
		}
		for _, r := range [][2]int64{{0, 8}, {2, 5}, {5, 2}, {-10, -1}, {7, 7}} {
			var want PosList
			for i := 0; i < col.Len(); i++ {
				if x := vals[base+i]; x >= r[0] && x <= r[1] {
					want = append(want, int32(i))
				}
			}
			got := col.ScanRange(r[0], r[1], nil)
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("col %d: ScanRange(%d, %d): %d positions, want %d", ci, r[0], r[1], len(got), len(want))
			}
		}
	}
}

func TestRLECompressionRatioAndBytes(t *testing.T) {
	vals := make([]int64, 1024) // one giant run
	c := CompressRLE("g", vals)
	if c.Bytes() != 12 {
		t.Fatalf("one-run Bytes = %d, want 12", c.Bytes())
	}
	if r := c.CompressionRatio(); r < 600 {
		t.Fatalf("one-run ratio = %.1f, want huge", r)
	}
	// A view inside one run overlaps exactly that run.
	if b := c.Slice(10, 20).Bytes(); b != 12 {
		t.Fatalf("view Bytes = %d, want 12", b)
	}
	if b := CompressRLE("e", nil).Bytes(); b != 0 {
		t.Fatalf("empty Bytes = %d, want 0", b)
	}
}

func TestEncodingNames(t *testing.T) {
	i64 := NewInt64("a", []int64{1, 2})
	cases := []struct {
		col  Column
		want string
	}{
		{i64, "plain"},
		{NewFloat64("f", []float64{1}), "plain"},
		{NewDate("d", []int32{1}), "plain"},
		{NewString("s", []string{"x"}), "dict"},
		{CompressInt64(i64), "bitpack"},
		{CompressDate(NewDate("d", []int32{1, 2})), "bitpack"},
		{CompressInt64RLE(i64), "rle"},
	}
	for _, tc := range cases {
		if got := Encoding(tc.col); got != tc.want {
			t.Fatalf("Encoding(%T) = %q, want %q", tc.col, got, tc.want)
		}
	}
}

// TestDecompressedBytesMetering: every Decompress adds the materialized byte
// count to the process-wide counter; code-domain scans add nothing.
func TestDecompressedBytesMetering(t *testing.T) {
	vals := rleTestValues(7, 256)
	rle := CompressRLE("g", vals)
	bp := CompressInt64(NewInt64("k", vals))
	cd := CompressDate(NewDate("d", []int32{1, 2, 3, 4}))

	before := DecompressedBytes()
	rle.ScanCmp(ScanEQ, 3, nil)
	bp.ScanRange(2, 5, nil)
	if got := DecompressedBytes(); got != before {
		t.Fatalf("code-domain scans metered %d bytes", got-before)
	}

	rle.Decompress()
	if got := DecompressedBytes() - before; got != 256*8 {
		t.Fatalf("RLE decompress metered %d bytes, want %d", got, 256*8)
	}
	before = DecompressedBytes()
	bp.Decompress()
	if got := DecompressedBytes() - before; got != 256*8 {
		t.Fatalf("bitpack decompress metered %d bytes, want %d", got, 256*8)
	}
	before = DecompressedBytes()
	cd.Decompress()
	if got := DecompressedBytes() - before; got != 4*4 {
		t.Fatalf("date decompress metered %d bytes, want %d", got, 4*4)
	}
}
