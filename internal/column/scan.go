package column

// Code-domain scan kernels: predicates evaluate directly on the packed
// representation. Every frame-of-reference block knows its minimum and (from
// the bit width) a conservative maximum, so whole blocks are skipped or
// taken with two comparisons; only straddling blocks decode value-at-a-time,
// and even those compare in the translated delta domain without
// reconstructing the int64. This is what makes compressed filters faster
// than decompress-then-filter on clustered data, not merely equal.

import "sync/atomic"

// ScanOp enumerates the comparison kinds of the code-domain kernels.
// internal/expr translates its operators to these once per predicate.
type ScanOp uint8

const (
	// ScanEQ selects values equal to the constant.
	ScanEQ ScanOp = iota
	// ScanNE selects values not equal to the constant.
	ScanNE
	// ScanLT selects values less than the constant.
	ScanLT
	// ScanLE selects values at most the constant.
	ScanLE
	// ScanGT selects values greater than the constant.
	ScanGT
	// ScanGE selects values at least the constant.
	ScanGE
)

// cmpMatches reports whether (a op b) holds.
func cmpMatches(op ScanOp, a, b int64) bool {
	switch op {
	case ScanEQ:
		return a == b
	case ScanNE:
		return a != b
	case ScanLT:
		return a < b
	case ScanLE:
		return a <= b
	case ScanGT:
		return a > b
	default:
		return a >= b
	}
}

// ScanCmp appends the local positions satisfying (value op v) to out.
func (c *CompressedInt64Column) ScanCmp(op ScanOp, v int64, out PosList) PosList {
	return scanBlocksCmp(c.blocks, c.off, c.length, op, v, out)
}

// ScanRange appends the local positions with lo ≤ value ≤ hi to out.
func (c *CompressedInt64Column) ScanRange(lo, hi int64, out PosList) PosList {
	return scanBlocksRange(c.blocks, c.off, c.length, lo, hi, out)
}

// ScanCmp appends the local positions satisfying (value op v) to out.
func (c *CompressedDateColumn) ScanCmp(op ScanOp, v int64, out PosList) PosList {
	return scanBlocksCmp(c.blocks, c.off, c.length, op, v, out)
}

// ScanRange appends the local positions with lo ≤ value ≤ hi to out.
func (c *CompressedDateColumn) ScanRange(lo, hi int64, out PosList) PosList {
	return scanBlocksRange(c.blocks, c.off, c.length, lo, hi, out)
}

// blockBounds returns the value range a block can contain. The maximum is
// the width-implied bound (min + 2^width − 1), which is exact for blocks
// whose extremes realize the width and conservative otherwise. bounded is
// false for 64-bit blocks, whose delta range wraps int64.
func blockBounds(b *packedBlock) (mn int64, maxDelta uint64, bounded bool) {
	if b.width >= 64 {
		return b.min, 0, false
	}
	return b.min, (uint64(1) << b.width) - 1, true
}

// blockClass classifies a block against (value op v): every row matches,
// no row matches, or the block straddles and must be scanned.
type blockClass uint8

const (
	classNone blockClass = iota
	classAll
	classMixed
)

func classifyCmp(b *packedBlock, op ScanOp, v int64) blockClass {
	mn, maxDelta, bounded := blockBounds(b)
	// dv is the unsigned distance v − mn, meaningful only when v ≥ mn;
	// computing it in uint64 sidesteps int64 overflow for extreme frames.
	var dv uint64
	if v >= mn {
		dv = uint64(v) - uint64(mn)
	}
	above := bounded && v >= mn && dv > maxDelta // v exceeds the block maximum
	below := v < mn                              // v is under the block minimum
	switch op {
	case ScanEQ:
		if below || above {
			return classNone
		}
		if b.width == 0 && mn == v {
			return classAll
		}
	case ScanNE:
		if below || above {
			return classAll
		}
		if b.width == 0 && mn == v {
			return classNone
		}
	case ScanLT:
		if above {
			return classAll
		}
		if v <= mn {
			return classNone
		}
	case ScanLE:
		if above || (bounded && v >= mn && dv == maxDelta) {
			return classAll
		}
		if below {
			return classNone
		}
	case ScanGT:
		if below {
			return classAll
		}
		if above || (bounded && v >= mn && dv == maxDelta) {
			return classNone
		}
	case ScanGE:
		if v <= mn {
			return classAll
		}
		if above {
			return classNone
		}
	}
	return classMixed
}

// scanBlocksCmp walks the blocks overlapping logical rows [off, off+n),
// appending matching local positions. Blocks classified all/none are
// emitted or skipped without touching their packed words.
func scanBlocksCmp(blocks []packedBlock, off, n int, op ScanOp, v int64, out PosList) PosList {
	for local := 0; local < n; {
		base := off + local
		b := &blocks[base/blockSize]
		j := base % blockSize // first row of interest inside the block
		span := b.n - j
		if span > n-local {
			span = n - local
		}
		switch classifyCmp(b, op, v) {
		case classAll:
			for i := 0; i < span; i++ {
				out = append(out, int32(local+i))
			}
		case classMixed:
			// Compare in the delta domain: value op v ⇔ delta op (v − min),
			// with the boundary cases already resolved by classification.
			dv := uint64(v) - uint64(b.min)
			vBelow := v < b.min // NE with v under the frame: everything matches
			for i := 0; i < span; i++ {
				d := getBits(b.words, (j+i)*int(b.width), b.width)
				var match bool
				switch op {
				case ScanEQ:
					match = d == dv
				case ScanNE:
					match = vBelow || d != dv
				case ScanLT:
					match = !vBelow && d < dv
				case ScanLE:
					match = !vBelow && d <= dv
				case ScanGT:
					match = vBelow || d > dv
				default: // ScanGE
					match = vBelow || d >= dv
				}
				if match {
					out = append(out, int32(local+i))
				}
			}
		}
		local += span
	}
	return out
}

// scanBlocksRange is scanBlocksCmp for lo ≤ value ≤ hi.
func scanBlocksRange(blocks []packedBlock, off, n int, lo, hi int64, out PosList) PosList {
	if lo > hi {
		return out
	}
	for local := 0; local < n; {
		base := off + local
		b := &blocks[base/blockSize]
		j := base % blockSize
		span := b.n - j
		if span > n-local {
			span = n - local
		}
		mn, maxDelta, bounded := blockBounds(b)
		var dhi uint64
		hiAbove := false // hi exceeds the block maximum
		if hi >= mn {
			dhi = uint64(hi) - uint64(mn)
			hiAbove = bounded && dhi >= maxDelta
		}
		switch {
		case hi < mn || (bounded && lo >= mn && uint64(lo)-uint64(mn) > maxDelta):
			// disjoint: skip the block
		case lo <= mn && hiAbove:
			for i := 0; i < span; i++ {
				out = append(out, int32(local+i))
			}
		default:
			var dlo uint64
			if lo > mn {
				dlo = uint64(lo) - uint64(mn)
			}
			for i := 0; i < span; i++ {
				d := getBits(b.words, (j+i)*int(b.width), b.width)
				if d >= dlo && (hiAbove || d <= dhi) {
					out = append(out, int32(local+i))
				}
			}
		}
		local += span
	}
	return out
}

// decompressedBytes counts bytes materialized out of compressed columns by
// full decodes (Decompress/Materialized). Late-materialized plans keep this
// near zero; the exposition surfaces it as robustdb_decompress_bytes_total.
var decompressedBytes atomic.Int64

func noteDecompressed(n int64) { decompressedBytes.Add(n) }

// DecompressedBytes returns the process-wide total of bytes produced by
// decompressing columns. Monotonic; exported as a Prometheus counter.
func DecompressedBytes() int64 { return decompressedBytes.Load() }

// Encoding names the physical encoding of a column for plans and traces:
// "plain", "dict" (order-preserving string dictionary), "bitpack"
// (frame-of-reference bit packing), or "rle" (run-length encoding).
func Encoding(c Column) string {
	switch c.(type) {
	case *CompressedInt64Column, *CompressedDateColumn:
		return "bitpack"
	case *RLEInt64Column:
		return "rle"
	case *StringColumn:
		return "dict"
	default:
		return "plain"
	}
}
