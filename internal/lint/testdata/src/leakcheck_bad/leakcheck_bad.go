// Package obs holds golden-test violations of the leakcheck analyzer:
// serving-layer goroutines with no join or stop path, so Drain/shutdown can
// return while they still run. The package is named obs because leakcheck
// scopes to the serving layer (server, admission, obs).
package obs

import "sync"

var counter int

// StartSampler spawns a loop nothing can stop: no WaitGroup, no stop
// channel — the canonical leaked background goroutine.
func StartSampler() {
	go func() { // want `goroutine has no join or stop path`
		for {
			counter++
		}
	}()
}

func spin() {
	for {
		counter++
	}
}

// StartSpinner spawns a named function whose body (and callees) carry no
// join evidence either.
func StartSpinner() {
	go spin() // want `goroutine has no join or stop path`
}

// StartWorkers calls Done on a WaitGroup nothing in the program ever
// Wait()s on — Done without a Wait is bookkeeping, not a join.
func StartWorkers(wg *sync.WaitGroup) {
	wg.Add(1)
	go func() { // want `goroutine has no join or stop path`
		defer wg.Done()
		counter++
	}()
}

// StartDynamic spawns through a function value: with no body to inspect,
// no stop path can be verified.
func StartDynamic(f func()) {
	go f() // want `goroutine has no join or stop path`
}
