// Package lockhold_ok holds clean golden-test counterparts for the lockhold
// analyzer: critical sections end before any channel communication.
package lockhold_ok

import "sync"

// Pool is a toy chopping thread pool: a queue guarded by a mutex.
type Pool struct {
	mu      sync.Mutex
	pending int
	queue   chan int
}

// Enqueue updates guarded state under the lock and communicates after
// releasing it.
func (p *Pool) Enqueue(v int) {
	p.mu.Lock()
	p.pending++
	p.mu.Unlock()
	p.queue <- v
}

// Drain receives first and locks afterwards.
func (p *Pool) Drain() int {
	v := <-p.queue
	p.mu.Lock()
	p.pending--
	p.mu.Unlock()
	return v
}
