// Package errdrop_bad holds golden-test violations of the errdrop analyzer:
// error returns discarded the way the pre-PR-1 catalog bug hid failures.
package errdrop_bad

import "errors"

var errBoom = errors.New("boom")

func fallible() error { return errBoom }

func falliblePair() (int, error) { return 0, errBoom }

// DropWithBlank discards the error with a blank assignment.
func DropWithBlank() {
	_ = fallible() // want `error assigned to _`
}

// DropBareCall discards the error by ignoring the call result entirely.
func DropBareCall() {
	fallible() // want `error return of fallible is silently discarded`
}

// DropPair discards a (value, error) pair wholesale.
func DropPair() {
	_, _ = falliblePair() // want `error assigned to _`
}

// DropVariable launders an already-bound error into the blank identifier.
func DropVariable() {
	err := fallible()
	_ = err // want `error assigned to _`
}
