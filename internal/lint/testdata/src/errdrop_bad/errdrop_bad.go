// Package errdrop_bad holds golden-test violations of the errdrop analyzer:
// error returns discarded the way the pre-PR-1 catalog bug hid failures.
package errdrop_bad

import "errors"

var errBoom = errors.New("boom")

func fallible() error { return errBoom }

func falliblePair() (int, error) { return 0, errBoom }

// DropWithBlank discards the error with a blank assignment.
func DropWithBlank() {
	_ = fallible() // want `error assigned to _`
}

// DropBareCall discards the error by ignoring the call result entirely.
func DropBareCall() {
	fallible() // want `error return of fallible is silently discarded`
}

// DropPair discards a (value, error) pair wholesale.
func DropPair() {
	_, _ = falliblePair() // want `error assigned to _`
}

// DropVariable launders an already-bound error into the blank identifier.
func DropVariable() {
	err := fallible()
	_ = err // want `error assigned to _`
}

// DropInDefer discards the error through a defer statement — the statement
// position the pre-extension walk never visited.
func DropInDefer() {
	defer fallible() // want `error return of deferred fallible call is silently discarded`
}

// DropInGo spawns an error-returning call whose result nothing can observe.
func DropInGo() {
	go fallible() // want `error return of fallible is unobservable from a go statement`
}

// DropInGoroutineClosure blanks the error inside a goroutine closure; the
// closure body is engine code like any other.
func DropInGoroutineClosure(done chan struct{}) {
	go func() {
		_ = fallible() // want `error assigned to _`
		close(done)
	}()
}
