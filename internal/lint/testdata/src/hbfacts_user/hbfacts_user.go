// Package hbfacts_user is the consumer side of the cross-package facts
// test: it leaks and releases reservations only through helpers defined in
// hbfacts_helper, so every verdict here depends on facts imported across
// the package boundary.
package hbfacts_user

import (
	"robustdb/internal/device"
	helper "robustdb/internal/lint/testdata/src/hbfacts_helper"
)

// LeakAcrossPackages owns the reservation the imported constructor hands
// back and releases it on the success path only.
func LeakAcrossPackages(m *device.Memory) error {
	res := helper.NewScratch(m)
	if err := res.Grow(16); err != nil {
		return err // the error path leaks; the test expects this diagnostic
	}
	helper.ReleaseVia(res)
	return nil
}

// CleanAcrossPackages releases through the imported helper on every path.
func CleanAcrossPackages(m *device.Memory) error {
	res := helper.NewScratch(m)
	defer helper.ReleaseVia(res)
	return res.Grow(32)
}
