// Package suppress_ok exercises the //lint:ignore mechanism: a justified
// directive on the offending line (or the line above) silences exactly the
// named analyzer.
package suppress_ok

import "time"

// AnnotatedAbove suppresses via a directive on the preceding line.
func AnnotatedAbove() time.Time {
	//lint:ignore virtualtime golden-test fixture for the suppression mechanism
	return time.Now()
}

// AnnotatedInline suppresses via a trailing directive on the same line.
func AnnotatedInline() time.Time {
	return time.Now() //lint:ignore virtualtime golden-test fixture for the suppression mechanism
}
