// Package hbfacts_helper is the provider side of the cross-package facts
// test: a releasing helper and a reserving constructor whose summaries the
// dependency-ordered facts pass must export before hbfacts_user is analyzed.
package hbfacts_helper

import "robustdb/internal/device"

// ReleaseVia releases its reservation argument on every path.
func ReleaseVia(res *device.Reservation) {
	res.Release()
}

// NewScratch hands its caller a fresh reservation the caller owns.
func NewScratch(m *device.Memory) *device.Reservation {
	return m.Reserve()
}
