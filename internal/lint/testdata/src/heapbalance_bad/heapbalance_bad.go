// Package heapbalance_bad holds golden-test violations of the heapbalance
// analyzer: device-heap reservations that leak on at least one control-flow
// path.
package heapbalance_bad

import "robustdb/internal/device"

// LeakOnError grows a reservation in two steps and returns on the second
// failure without releasing the bytes already held — the PR 1 leak class.
func LeakOnError(m *device.Memory) error {
	res := m.Reserve()
	if err := res.Grow(64); err != nil {
		return err // want `device reservation "res" leaks: this return path`
	}
	if err := res.Grow(32); err != nil {
		return err // want `device reservation "res" leaks: this return path`
	}
	res.Release()
	return nil
}

// LeakOnFallOff never releases at all; the diagnostic anchors on the
// definition.
func LeakOnFallOff(m *device.Memory) {
	res := m.Reserve() // want `device reservation "res" leaks: control can leave`
	if err := res.Grow(8); err != nil {
		panic(err)
	}
}

// DropReservation discards the Reserve result outright: nothing can ever
// release it.
func DropReservation(m *device.Memory) {
	m.Reserve() // want `Reserve\(\) result discarded`
}

// AllocNoRelease performs a raw allocation with no balancing release
// anywhere in the function.
func AllocNoRelease(m *device.Memory) error {
	return m.Alloc(128) // want `Memory\.Alloc without a matching Memory\.Release`
}
