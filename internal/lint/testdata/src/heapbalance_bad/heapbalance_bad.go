// Package heapbalance_bad holds golden-test violations of the heapbalance
// analyzer: device-heap reservations that leak on at least one control-flow
// path.
package heapbalance_bad

import "robustdb/internal/device"

// LeakOnError grows a reservation in two steps and returns on the second
// failure without releasing the bytes already held — the PR 1 leak class.
func LeakOnError(m *device.Memory) error {
	res := m.Reserve()
	if err := res.Grow(64); err != nil {
		return err // want `device reservation "res" leaks: this return path`
	}
	if err := res.Grow(32); err != nil {
		return err // want `device reservation "res" leaks: this return path`
	}
	res.Release()
	return nil
}

// LeakOnFallOff never releases at all; the diagnostic anchors on the
// definition.
func LeakOnFallOff(m *device.Memory) {
	res := m.Reserve() // want `device reservation "res" leaks: control can leave`
	if err := res.Grow(8); err != nil {
		panic(err)
	}
}

// DropReservation discards the Reserve result outright: nothing can ever
// release it.
func DropReservation(m *device.Memory) {
	m.Reserve() // want `Reserve\(\) result discarded`
}

// AllocNoRelease performs a raw allocation with no balancing release
// anywhere in the function.
func AllocNoRelease(m *device.Memory) error {
	return m.Alloc(128) // want `Memory\.Alloc without a matching Memory\.Release`
}

// releaseVia is summarized by the facts pass as a releasing helper: it
// releases its reservation parameter on every path.
func releaseVia(res *device.Reservation) {
	res.Release()
}

// LeakThroughHelper releases through the helper on the success path only;
// the helper summary keeps the error path visible as a leak instead of the
// call hiding the reservation entirely.
func LeakThroughHelper(m *device.Memory) error {
	res := m.Reserve()
	if err := res.Grow(16); err != nil {
		return err // want `device reservation "res" leaks: this return path`
	}
	releaseVia(res)
	return nil
}

// newScratch is summarized as a reserving constructor: its caller owns the
// result.
func newScratch(m *device.Memory) *device.Reservation {
	return m.Reserve()
}

// LeakFromConstructor owns the reservation newScratch hands back and never
// releases it — invisible without the constructor summary.
func LeakFromConstructor(m *device.Memory) {
	res := newScratch(m) // want `device reservation "res" leaks: control can leave`
	if err := res.Grow(8); err != nil {
		panic(err)
	}
}

// releaseSometimes is NOT summarized as releasing: the else path keeps the
// reservation, so calling it neither releases nor legitimately escapes.
func releaseSometimes(res *device.Reservation, ok bool) {
	if ok {
		res.Release()
	}
}

// LeakThroughPartialHelper trusts a helper that only sometimes releases;
// without the all-paths summary the pass treats the call as an escape, and
// ownership transfer is the conservative verdict — no diagnostic here, but
// the helper itself must not earn a releasing fact (covered by
// LeakThroughHelper distinguishing the summarized case).
func LeakThroughPartialHelper(m *device.Memory, ok bool) {
	res := m.Reserve()
	releaseSometimes(res, ok)
}
