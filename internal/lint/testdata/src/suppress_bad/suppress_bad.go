// Package suppress_bad exercises directive failure modes: a reason-less
// //lint:ignore is itself an error and suppresses nothing, and a directive
// naming one analyzer does not silence another.
package suppress_bad

import "time"

// MissingReason carries a directive without a justification; the directive
// is reported and the wall-clock read stays visible.
func MissingReason() time.Time {
	//lint:ignore virtualtime
	return time.Now()
}

// WrongAnalyzer suppresses errdrop, which does not cover wall-clock reads.
func WrongAnalyzer() time.Time {
	//lint:ignore errdrop this names the wrong analyzer on purpose
	return time.Now()
}
