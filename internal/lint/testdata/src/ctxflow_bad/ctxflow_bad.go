// Package server holds golden-test violations of the ctxflow analyzer:
// request-path code that detaches from the request's deadline and
// cancellation. The package is named server because ctxflow seeds its
// request-path roots from the server/admission serving surface.
package server

import (
	"context"
	"net/http"
	"time"
)

// handleQuery is the /v1/query handler shape: a serving root. It threads
// the request context correctly — the regression it seeds sits two calls
// down, where the per-function view loses sight of it.
func handleQuery(w http.ResponseWriter, r *http.Request) {
	runQuery(r.Context())
}

// runQuery forwards the context but calls into a helper that drops it.
func runQuery(ctx context.Context) {
	execOnDevice()
	_ = ctx
}

// execOnDevice mints a fresh root context on the request path — the seeded
// /v1/query → exec regression: the kernel run outlives the client's
// deadline, invisible to any single-function analysis.
func execOnDevice() {
	ctx := context.Background() // want `context.Background\(\) on the request path detaches execOnDevice`
	_ = ctx
}

// WaitForSlot is exported (a serving root) and parks the request in a
// wall-clock sleep that ignores cancellation.
func WaitForSlot() {
	time.Sleep(10 * time.Millisecond) // want `time.Sleep in WaitForSlot blocks the request path`
}

// Submit receives a context but still performs a naked blocking receive the
// dead context cannot interrupt.
func Submit(ctx context.Context, done chan struct{}) {
	<-done // want `blocking channel receive outside select`
	_ = ctx
}

// Enqueue receives a context but sends without a ctx.Done() escape hatch.
func Enqueue(ctx context.Context, q chan int) {
	q <- 1 // want `blocking channel send outside select`
	_ = ctx
}

// SubmitTODO reaches for context.TODO instead of the request context that
// is already in hand.
func SubmitTODO(w http.ResponseWriter, r *http.Request) {
	process(context.TODO()) // want `context.TODO\(\) on the request path`
}

func process(ctx context.Context) { _ = ctx }
