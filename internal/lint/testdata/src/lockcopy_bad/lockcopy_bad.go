// Package lockcopy_bad holds golden-test violations of the lockcopy
// analyzer: mutex-bearing values duplicated after first use.
package lockcopy_bad

import "sync"

// Guarded pairs a mutex with the state it protects.
type Guarded struct {
	mu sync.Mutex
	n  int
}

// ValueReceiver copies the lock state on every method call.
func (g Guarded) ValueReceiver() int { // want `receiver passes mutex-bearing type`
	return g.n
}

// ByValueParam copies the caller's lock state into the parameter.
func ByValueParam(g Guarded) int { // want `parameter passes mutex-bearing type`
	return g.n
}

// CopyAssign forks the lock state into a second value.
func CopyAssign(g *Guarded) int {
	dup := *g // want `assignment copies a mutex-bearing value`
	return dup.n
}
