// Package vecengine mimics a kernel package with compliant code for the
// kernelpar golden test: serial loops and callback-driven decomposition are
// fine; only raw go statements are forbidden.
package vecengine

// SumRows folds serially — no goroutines, nothing to flag.
func SumRows(xs []int) int {
	total := 0
	for _, x := range xs {
		total += x
	}
	return total
}

// ForEach models handing work to a pool-style scheduler: invoking callbacks
// is legal; the pool (outside this package) owns the goroutines.
func ForEach(n int, fn func(i int)) {
	for i := 0; i < n; i++ {
		fn(i)
	}
}
