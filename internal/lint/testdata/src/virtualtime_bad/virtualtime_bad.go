// Package virtualtime_bad holds golden-test violations of the virtualtime
// analyzer: wall-clock reads and unseeded randomness that would break
// bit-for-bit chaos replay.
package virtualtime_bad

import (
	"math/rand"
	"time"
)

// WallClockLatency measures with the real clock instead of virtual sim time.
func WallClockLatency() time.Duration {
	start := time.Now()          // want `time\.Now reads the wall clock`
	time.Sleep(time.Millisecond) // want `time\.Sleep reads the wall clock`
	return time.Since(start)     // want `time\.Since reads the wall clock`
}

// WaitForRetry parks on a real timer.
func WaitForRetry() {
	<-time.After(time.Millisecond) // want `time\.After reads the wall clock`
}

// UnseededJitter draws retry jitter from the global, unseeded source.
func UnseededJitter() time.Duration {
	return time.Duration(rand.Intn(100)) * time.Microsecond // want `rand\.Intn draws from an unseeded global source`
}
