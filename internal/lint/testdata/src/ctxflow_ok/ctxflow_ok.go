// Package server holds the ctxflow negative fixture: request-path code that
// threads the request context correctly — selects guarded by ctx.Done(),
// the documented slog Background placeholder, and drivers upstream of the
// serving surface.
package server

import (
	"context"
	"log/slog"
	"net/http"
	"time"
)

// handleQuery threads the request context end to end.
func handleQuery(w http.ResponseWriter, r *http.Request) {
	runQuery(r.Context())
}

// runQuery logs with the documented slog "no context" placeholder — exempt
// because the argument is passed directly to a *slog.Logger method — and
// forwards the real context onward.
func runQuery(ctx context.Context) {
	slog.Default().Log(context.Background(), slog.LevelInfo, "admitted")
	drainSeq()
	execOnDevice(ctx)
}

// execOnDevice waits with the context in a select: cancellation wins.
func execOnDevice(ctx context.Context) {
	select {
	case <-ctx.Done():
	case <-time.After(time.Millisecond):
	}
}

// Enqueue pairs its send with ctx.Done() in a select.
func Enqueue(ctx context.Context, q chan int) {
	select {
	case q <- 1:
	case <-ctx.Done():
	}
}

var sequence = make(chan struct{}, 1)

// drainSeq is reachable from the serving surface but has no context
// parameter: its naked channel operations are the owner-side mutex idiom
// (Host.Run's sequencing channel), not a request-path wait, so rule 3 does
// not apply.
func drainSeq() {
	<-sequence
	sequence <- struct{}{}
}
