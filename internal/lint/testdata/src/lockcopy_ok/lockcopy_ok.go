// Package lockcopy_ok holds clean golden-test counterparts for the lockcopy
// analyzer: locks are shared through pointers and fresh values are
// constructed, never duplicated.
package lockcopy_ok

import "sync"

// Guarded pairs a mutex with the state it protects.
type Guarded struct {
	mu sync.Mutex
	n  int
}

// PointerReceiver shares the one lock.
func (g *Guarded) PointerReceiver() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.n
}

// Construct builds a fresh value: there is no lock state to fork yet.
func Construct() *Guarded {
	g := Guarded{n: 1}
	return &g
}

// SharePointer hands around a pointer, never a copy.
func SharePointer(g *Guarded) *Guarded {
	other := g
	return other
}
