// Package virtualtime_ok holds clean golden-test counterparts for the
// virtualtime analyzer: durations are plain values and every random draw
// comes from a seeded generator.
package virtualtime_ok

import (
	"math/rand"
	"time"
)

// Backoff computes a virtual-time delay: time.Duration is a value type, not
// a clock read.
func Backoff(attempt int) time.Duration {
	return time.Duration(attempt+1) * 100 * time.Microsecond
}

// SeededJitter draws jitter reproducibly from a seeded generator, the
// pattern the fault injector and data generators use.
func SeededJitter(seed int64) time.Duration {
	r := rand.New(rand.NewSource(seed))
	return time.Duration(r.Intn(100)) * time.Microsecond
}
