// Package obs holds the leakcheck negative fixture: every spawned goroutine
// carries one of the accepted join/stop shapes — a waited WaitGroup, a
// closed stop channel (found through the call graph, across methods), a
// drained channel, or a channel parameter whose owner holds the stop path.
package obs

import "sync"

var counter int

// RunWorkers joins every worker through the WaitGroup it Wait()s on.
func RunWorkers(jobs []int) {
	var wg sync.WaitGroup
	for range jobs {
		wg.Add(1)
		go func() {
			defer wg.Done()
			counter++
		}()
	}
	wg.Wait()
}

type sampler struct {
	quit chan struct{}
}

// Start spawns the loop; the stop path lives two hops away, in Stop.
func (s *sampler) Start() {
	go s.loop()
}

// loop selects on the quit field the owner closes — the Host.pump pattern.
func (s *sampler) loop() {
	for {
		select {
		case <-s.quit:
			return
		default:
			counter++
		}
	}
}

// Stop closes the quit channel the loop selects on.
func (s *sampler) Stop() {
	close(s.quit)
}

// Drain consumes events until the producer closes the channel; the close in
// this function is the goroutine's exit condition.
func Drain(events chan int) {
	go func() {
		for v := range events {
			counter += v
		}
	}()
	close(events)
}

func pump(ch chan int) {
	for v := range ch {
		counter += v
	}
}

// StartPump delegates the stop path to the channel's owner: pump blocks
// only on its channel parameter, so whoever owns ch owns the shutdown.
func StartPump(ch chan int) {
	go pump(ch)
}
