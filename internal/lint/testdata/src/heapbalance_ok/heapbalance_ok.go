// Package heapbalance_ok holds clean golden-test counterparts for the
// heapbalance analyzer: every reservation reaches a release (or transfers
// ownership) on every control-flow path.
package heapbalance_ok

import "robustdb/internal/device"

// DeferRelease covers every exit path with one deferred release.
func DeferRelease(m *device.Memory) error {
	res := m.Reserve()
	defer res.Release()
	if err := res.Grow(64); err != nil {
		return err
	}
	return res.Grow(32)
}

// ReleaseEveryPath releases explicitly on the error and the success path.
func ReleaseEveryPath(m *device.Memory) (int64, error) {
	res := m.Reserve()
	if err := res.Grow(64); err != nil {
		res.Release()
		return 0, err
	}
	held := res.Held()
	res.Release()
	return held, nil
}

// TransferOwnership hands the reservation to the caller, who releases it;
// local tracking ends at the ownership transfer.
func TransferOwnership(m *device.Memory) (*device.Reservation, error) {
	res := m.Reserve()
	if err := res.Grow(16); err != nil {
		res.Release()
		return nil, err
	}
	return res, nil
}

// AllocBalanced pairs the raw allocation with its release.
func AllocBalanced(m *device.Memory) error {
	if err := m.Alloc(128); err != nil {
		return err
	}
	m.Release(128)
	return nil
}

// releaseVia is summarized as a releasing helper: passing a reservation to
// it counts as the release at the call site.
func releaseVia(res *device.Reservation) {
	res.Release()
}

// newScratch is summarized as a reserving constructor; the local it binds
// before returning transfers ownership to the caller.
func newScratch(m *device.Memory) *device.Reservation {
	res := m.Reserve()
	return res
}

// newScratchChained forwards another constructor's fresh reservation, so
// the summary propagates through the chain.
func newScratchChained(m *device.Memory) *device.Reservation {
	return newScratch(m)
}

// ReleasedInCallee hands the reservation to the releasing helper on every
// path: the summary makes the helper call count as the release.
func ReleasedInCallee(m *device.Memory) error {
	res := m.Reserve()
	if err := res.Grow(16); err != nil {
		releaseVia(res)
		return err
	}
	releaseVia(res)
	return nil
}

// DeferredHelperRelease covers every exit path with one deferred helper
// call — `defer releaseVia(res)` is as good as `defer res.Release()`.
func DeferredHelperRelease(m *device.Memory) error {
	res := newScratch(m)
	defer releaseVia(res)
	return res.Grow(32)
}

// ChainedConstructor tracks a reservation created two helpers deep and
// releases it through a defer.
func ChainedConstructor(m *device.Memory) error {
	res := newScratchChained(m)
	defer res.Release()
	return res.Grow(8)
}
