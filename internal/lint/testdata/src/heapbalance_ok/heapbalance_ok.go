// Package heapbalance_ok holds clean golden-test counterparts for the
// heapbalance analyzer: every reservation reaches a release (or transfers
// ownership) on every control-flow path.
package heapbalance_ok

import "robustdb/internal/device"

// DeferRelease covers every exit path with one deferred release.
func DeferRelease(m *device.Memory) error {
	res := m.Reserve()
	defer res.Release()
	if err := res.Grow(64); err != nil {
		return err
	}
	return res.Grow(32)
}

// ReleaseEveryPath releases explicitly on the error and the success path.
func ReleaseEveryPath(m *device.Memory) (int64, error) {
	res := m.Reserve()
	if err := res.Grow(64); err != nil {
		res.Release()
		return 0, err
	}
	held := res.Held()
	res.Release()
	return held, nil
}

// TransferOwnership hands the reservation to the caller, who releases it;
// local tracking ends at the ownership transfer.
func TransferOwnership(m *device.Memory) (*device.Reservation, error) {
	res := m.Reserve()
	if err := res.Grow(16); err != nil {
		res.Release()
		return nil, err
	}
	return res, nil
}

// AllocBalanced pairs the raw allocation with its release.
func AllocBalanced(m *device.Memory) error {
	if err := m.Alloc(128); err != nil {
		return err
	}
	m.Release(128)
	return nil
}
