// Package server holds golden-test violations of the wirestatus analyzer:
// HTTP handlers in the serving layer that swallow a query error without
// mapping it to a wire status, leaving the client with no response. The
// package is named server because the analyzer (like the virtualtime
// serving-layer exemption) scopes by package name.
package server

import (
	"errors"
	"net/http"
)

func submit() error { return errors.New("overloaded") }

func submitValue() (int, error) { return 0, errors.New("overloaded") }

// DropSilently returns from the error branch without touching the
// ResponseWriter: the client connection is abandoned with no status.
func DropSilently(w http.ResponseWriter, r *http.Request) {
	if err := submit(); err != nil { // want `drops a query error without mapping it to a wire status`
		return
	}
	w.WriteHeader(http.StatusOK)
}

var droppedQueries int

// DropAfterCounting records the failure in a metric but still leaves the
// wire silent — counting is not a substitute for a status.
func DropAfterCounting(w http.ResponseWriter, r *http.Request) {
	rows, err := submitValue()
	if err != nil { // want `drops a query error without mapping it to a wire status`
		droppedQueries++
		return
	}
	_ = rows
	w.WriteHeader(http.StatusOK)
}

type frontDoor struct{}

// ServeQuery shows the violation on a method handler: the reversed nil
// comparison is matched too.
func (frontDoor) ServeQuery(w http.ResponseWriter, r *http.Request) {
	if err := submit(); nil != err { // want `drops a query error without mapping it to a wire status`
		return
	}
	w.WriteHeader(http.StatusOK)
}
