// Package engine mimics a kernel package for the kernelpar golden test:
// the package name puts it in scope, and every raw go statement must be
// flagged — kernel concurrency belongs to par.Pool.
package engine

// SumRows spawns a raw goroutine for a partial sum, bypassing the pool's
// worker bound and deterministic merge order.
func SumRows(xs []int) int {
	done := make(chan int)
	go func() { // want `raw go statement in kernel package`
		total := 0
		for _, x := range xs {
			total += x
		}
		done <- total
	}()
	return <-done
}

// Spawn fires an arbitrary function on an unbounded goroutine.
func Spawn(f func(), done chan struct{}) {
	go func() { // want `raw go statement in kernel package`
		f()
		close(done)
	}()
}
