// Package placementguard_ok holds clean golden-test counterparts for the
// placementguard analyzer: the breaker is consulted before any GPU costing,
// and fixed placements that never cost locally are exempt.
package placementguard_ok

import (
	"robustdb/internal/cost"
	"robustdb/internal/exec"
)

// Balanced consults the breaker first — a faulting device degrades to CPU
// before any costing happens.
type Balanced struct{}

// RunTime checks AllowGPU before touching the GPU queue estimate.
func (Balanced) RunTime(e *exec.Engine) cost.ProcKind {
	if !e.Health.AllowGPU(e.Sim.Now()) {
		return cost.CPU
	}
	if e.Outstanding(cost.GPU) <= e.Outstanding(cost.CPU) {
		return cost.GPU
	}
	return cost.CPU
}

// Fixed returns a constant placement without costing anything: the engine
// re-checks the breaker centrally before executing any GPU decision, so no
// local guard is required.
func Fixed() cost.ProcKind { return cost.GPU }
