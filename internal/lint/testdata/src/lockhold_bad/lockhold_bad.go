// Package lockhold_bad holds golden-test violations of the lockhold
// analyzer: channel operations inside critical sections, the pattern that
// turns one slow chopping worker into a pool-wide stall.
package lockhold_bad

import "sync"

// Pool is a toy chopping thread pool: a queue guarded by a mutex.
type Pool struct {
	mu      sync.Mutex
	pending int
	queue   chan int
}

// EnqueueLocked sends on the queue while holding the mutex: a full queue
// blocks every worker contending for mu.
func (p *Pool) EnqueueLocked(v int) {
	p.mu.Lock()
	p.pending++
	p.queue <- v // want `channel send while holding p\.mu`
	p.mu.Unlock()
}

// DrainDeferred holds the lock to function end via defer, so the receive
// happens inside the critical section.
func (p *Pool) DrainDeferred() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return <-p.queue // want `channel receive while holding p\.mu`
}
