// Package server holds wirestatus-clean serving-layer code: every error
// branch that ends a handler either maps the failure onto the wire or
// propagates it to a caller that will.
package server

import (
	"errors"
	"net/http"
)

func submit() error { return errors.New("overloaded") }

// MappedToStatus writes the error to the wire before returning — the
// canonical handler shape.
func MappedToStatus(w http.ResponseWriter, r *http.Request) {
	if err := submit(); err != nil {
		http.Error(w, err.Error(), http.StatusTooManyRequests)
		return
	}
	w.WriteHeader(http.StatusOK)
}

// Propagated hands the error back to the caller, which owns the mapping.
func Propagated(w http.ResponseWriter, r *http.Request) error {
	if err := submit(); err != nil {
		return err
	}
	w.WriteHeader(http.StatusOK)
	return nil
}

// FallsThrough does not terminate in the error branch: the error stays live
// and the handler maps it below.
func FallsThrough(w http.ResponseWriter, r *http.Request) {
	status := http.StatusOK
	err := submit()
	if err != nil {
		status = http.StatusTooManyRequests
	}
	w.WriteHeader(status)
}

// NotAHandler has no ResponseWriter parameter, so the invariant does not
// apply; its caller owns the wire.
func NotAHandler() {
	if err := submit(); err != nil {
		return
	}
}

// CrashesLoudly panics instead of answering — loud, not silent, so the
// analyzer leaves it to the process supervisor.
func CrashesLoudly(w http.ResponseWriter, r *http.Request) {
	if err := submit(); err != nil {
		panic(err)
	}
	w.WriteHeader(http.StatusOK)
}
