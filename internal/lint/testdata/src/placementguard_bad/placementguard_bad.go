// Package placementguard_bad holds golden-test violations of the
// placementguard analyzer: run-time placement decisions that cost the GPU
// without consulting the device health breaker.
package placementguard_bad

import (
	"robustdb/internal/cost"
	"robustdb/internal/exec"
)

// Greedy is a run-time placement strategy missing its breaker check.
type Greedy struct{}

// RunTime costs the GPU queue without asking whether the device is healthy,
// so a faulting device keeps receiving operators.
func (Greedy) RunTime(e *exec.Engine) cost.ProcKind {
	gpuT := e.Outstanding(cost.GPU) // want `costs GPU placement without consulting the health breaker`
	cpuT := e.Outstanding(cost.CPU)
	if gpuT <= cpuT {
		return cost.GPU
	}
	return cost.CPU
}

// GuardTooLate consults the breaker only after the costing call already
// happened.
func GuardTooLate(e *exec.Engine) cost.ProcKind {
	gpuT := e.Outstanding(cost.GPU) // want `costs GPU placement without consulting the health breaker`
	if !e.Health.AllowGPU(e.Sim.Now()) || gpuT > 0 {
		return cost.CPU
	}
	return cost.GPU
}
