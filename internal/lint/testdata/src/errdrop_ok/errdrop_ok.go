// Package errdrop_ok holds clean golden-test counterparts for the errdrop
// analyzer: errors are propagated, counted, or conventionally ignorable.
package errdrop_ok

import (
	"errors"
	"fmt"
	"strings"
)

var errBoom = errors.New("boom")

func fallible() error { return errBoom }

// Propagate handles the error by wrapping and returning it.
func Propagate() error {
	if err := fallible(); err != nil {
		return fmt.Errorf("wrapped: %w", err)
	}
	return nil
}

// Count surfaces the error in a counter — the Metrics.CatalogErrors pattern.
func Count(counter *int64) {
	if err := fallible(); err != nil {
		*counter++
	}
}

// ExemptWriters uses the conventionally ignorable callees: fmt.Print* and
// the never-failing strings.Builder.
func ExemptWriters() string {
	var b strings.Builder
	b.WriteString("hello")
	fmt.Println("done")
	return b.String()
}

type resource struct{}

func (resource) Close() error { return nil }

// DeferredClose uses the one conventional deferred drop: a no-argument
// Close method cleanup.
func DeferredClose() {
	r := resource{}
	defer r.Close()
}

// DeferredHandled wraps the deferred fallible call in a closure that counts
// the failure.
func DeferredHandled(counter *int64) {
	defer func() {
		if err := fallible(); err != nil {
			*counter++
		}
	}()
}

// GoHandled spawns a closure that surfaces the error instead of spawning
// the fallible call directly.
func GoHandled(counter *int64, done chan struct{}) {
	go func() {
		if err := fallible(); err != nil {
			*counter++
		}
		close(done)
	}()
}
