package lint

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// writeModule materializes a synthetic module in a temp directory: files maps
// module-relative paths to contents. Loader failure modes (syntax errors,
// import cycles, excluded files) are tested on synthetic trees because the
// repo itself must stay gofmt-clean and compilable.
func writeModule(t *testing.T, files map[string]string) string {
	t.Helper()
	root := t.TempDir()
	files["go.mod"] = "module example.com/m\n\ngo 1.22\n"
	for rel, content := range files {
		path := filepath.Join(root, filepath.FromSlash(rel))
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatalf("mkdir for %s: %v", rel, err)
		}
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			t.Fatalf("write %s: %v", rel, err)
		}
	}
	return root
}

// loadErr loads one directory of a synthetic module and returns the error,
// failing the test on success — every case here is a failure mode that must
// surface as a clean diagnostic, not a panic or an unbounded recursion.
func loadErr(t *testing.T, root, dir string) error {
	t.Helper()
	loader, err := NewLoader(root)
	if err != nil {
		t.Fatalf("NewLoader: %v", err)
	}
	_, err = loader.LoadDir(filepath.Join(root, dir))
	if err == nil {
		t.Fatalf("LoadDir(%s): expected an error, got none", dir)
	}
	return err
}

func TestLoadMalformedSource(t *testing.T) {
	root := writeModule(t, map[string]string{
		"broken/broken.go": "package broken\n\nfunc Oops( {\n",
	})
	err := loadErr(t, root, "broken")
	if !strings.Contains(err.Error(), "broken") {
		t.Errorf("syntax-error diagnostic does not name the package: %v", err)
	}
}

func TestLoadTypeError(t *testing.T) {
	root := writeModule(t, map[string]string{
		"badtypes/badtypes.go": "package badtypes\n\nvar X = undefinedName\n",
	})
	err := loadErr(t, root, "badtypes")
	if !strings.Contains(err.Error(), "type-checking") {
		t.Errorf("type error not reported as a type-checking diagnostic: %v", err)
	}
}

func TestLoadImportCycle(t *testing.T) {
	root := writeModule(t, map[string]string{
		"a/a.go": "package a\n\nimport \"example.com/m/b\"\n\nvar X = b.Y\n",
		"b/b.go": "package b\n\nimport \"example.com/m/a\"\n\nvar Y = a.X\n",
	})
	err := loadErr(t, root, "a")
	if !strings.Contains(err.Error(), "import cycle through") {
		t.Errorf("cycle not reported as an import-cycle diagnostic: %v", err)
	}
}

func TestLoadEmptyDir(t *testing.T) {
	root := writeModule(t, map[string]string{
		"empty/README.txt": "no Go files here\n",
	})
	err := loadErr(t, root, "empty")
	if !strings.Contains(err.Error(), "no Go files") {
		t.Errorf("empty package dir not reported cleanly: %v", err)
	}
}

func TestLoadSkipsExcludedFiles(t *testing.T) {
	// The gated file declares a symbol that would collide with the real one;
	// loading succeeds only if the build constraint actually excludes it.
	root := writeModule(t, map[string]string{
		"tagged/tagged.go": "package tagged\n\nconst Mode = \"real\"\n",
		"tagged/gen.go":    "//go:build generate_tool\n\npackage tagged\n\nconst Mode = \"tool\"\n",
	})
	loader, err := NewLoader(root)
	if err != nil {
		t.Fatalf("NewLoader: %v", err)
	}
	pkg, err := loader.LoadDir(filepath.Join(root, "tagged"))
	if err != nil {
		t.Fatalf("LoadDir: build-tag-excluded file broke the load: %v", err)
	}
	if len(pkg.Files) != 1 {
		t.Errorf("want 1 included file, got %d", len(pkg.Files))
	}
}

func TestLoadAllFilesExcluded(t *testing.T) {
	root := writeModule(t, map[string]string{
		"gated/gated.go": "//go:build sometool\n\npackage gated\n\nconst X = 1\n",
	})
	err := loadErr(t, root, "gated")
	if !strings.Contains(err.Error(), "excluded by build constraints") {
		t.Errorf("all-excluded package not reported cleanly: %v", err)
	}
}

func TestBuildTagsSatisfied(t *testing.T) {
	cases := []struct {
		name string
		src  string
		want bool
	}{
		{"no constraint", "package p\n", true},
		{"unknown tag", "//go:build sometool\n\npackage p\n", false},
		{"negated unknown tag", "//go:build !sometool\n\npackage p\n", true},
		{"host os", "//go:build linux || darwin\n\npackage p\n", true},
		{"foreign os", "//go:build plan9\n\npackage p\n", false},
		{"compiler", "//go:build gc\n\npackage p\n", true},
		{"go version", "//go:build go1.21\n\npackage p\n", true},
		{"doc comment first", "// Package p does things.\n//go:build sometool\npackage p\n", false},
		{"malformed", "//go:build !!(\n\npackage p\n", true},
	}
	for _, tc := range cases {
		if got := buildTagsSatisfied([]byte(tc.src)); got != tc.want {
			t.Errorf("%s: buildTagsSatisfied = %v, want %v", tc.name, got, tc.want)
		}
	}
}
