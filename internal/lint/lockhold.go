package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// LockHold forbids blocking channel operations while a mutex is held. In the
// chopping thread pool a worker that parks on a channel send inside a
// critical section stalls every other worker on the same lock — under heap
// contention that converts one slow operator into a pool-wide stall, exactly
// the cascading slowdown the robustness work bounds. Unlock before
// communicating, or communicate first and lock afterwards.
//
// The check is lexical within one function body: a send or receive between a
// Lock and its Unlock (or after a `defer Unlock`, which holds to the end of
// the function) is reported. Nested function literals are separate bodies —
// they run at another time, under another goroutine's lock set.
var LockHold = &Analyzer{
	Name: "lockhold",
	Doc:  "forbid channel send/receive while holding a mutex",
	Run:  runLockHold,
}

func runLockHold(p *Pass) {
	info := p.Pkg.Info
	p.walkFiles(func(f *ast.File) {
		funcBodies(f, func(_ string, _ *ast.FuncType, body *ast.BlockStmt) {
			held := map[string]bool{} // receiver expr → currently locked
			ast.Inspect(body, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.FuncLit:
					if n.Body != body {
						return false // its own body gets its own visit
					}
				case *ast.DeferStmt:
					// A deferred Unlock runs at function exit: the lock stays
					// held for the rest of the body, so don't process it as a
					// release (and a deferred Lock is not a lock here yet).
					return false
				case *ast.CallExpr:
					if key, locks, ok := mutexOp(info, n); ok {
						if locks {
							held[key] = true
						} else {
							delete(held, key)
						}
					}
				case *ast.SendStmt:
					reportHeld(p, held, n.Pos(), "send")
				case *ast.UnaryExpr:
					if n.Op == token.ARROW {
						reportHeld(p, held, n.Pos(), "receive")
					}
				}
				return true
			})
		})
	})
}

// mutexOp classifies a call as a lock or unlock on a sync.Mutex/RWMutex
// receiver, keyed by the receiver expression's source form.
func mutexOp(info *types.Info, call *ast.CallExpr) (key string, locks, ok bool) {
	fn := calleeFunc(info, call)
	if fn == nil {
		return "", false, false
	}
	pkg, typ, isMeth := receiverOf(fn)
	if !isMeth || pkg != "sync" || (typ != "Mutex" && typ != "RWMutex") {
		return "", false, false
	}
	sel, isSel := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !isSel {
		return "", false, false
	}
	key = types.ExprString(sel.X)
	switch fn.Name() {
	case "Lock", "RLock":
		return key, true, true
	case "Unlock", "RUnlock":
		return key, false, true
	}
	return "", false, false
}

func reportHeld(p *Pass, held map[string]bool, pos token.Pos, op string) {
	for key := range held {
		p.Reportf(pos, "channel %s while holding %s: a blocked worker stalls everyone contending for the lock — unlock first", op, key)
		return // one report per operation is enough
	}
}
