package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

const (
	costPkg = "robustdb/internal/cost"
	execPkg = "robustdb/internal/exec"
)

// PlacementGuard enforces the degradation ladder's last rung on run-time
// placement: a placer that costs the GPU — passes cost.GPU to an estimator,
// queue probe, or footprint model while deciding a cost.ProcKind — must
// first consult the device health breaker (Health.AllowGPU). A placer that
// skips the check keeps steering operators onto a faulting device, exactly
// the never-slower-than-CPU violation the breaker exists to prevent.
// Placers that merely *return* a fixed cost.GPU are exempt: the engine
// re-checks the breaker centrally before executing any GPU decision.
var PlacementGuard = &Analyzer{
	Name: "placementguard",
	Doc:  "require a Health.AllowGPU check before costing GPU placement",
	Run:  runPlacementGuard,
}

func runPlacementGuard(p *Pass) {
	info := p.Pkg.Info
	p.walkFiles(func(f *ast.File) {
		funcBodies(f, func(name string, ftype *ast.FuncType, body *ast.BlockStmt) {
			if !returnsProcKind(info, ftype) {
				return
			}
			guard := firstAllowGPUCall(info, body)
			ast.Inspect(body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				for _, arg := range call.Args {
					if !isGPUConst(info, arg) {
						continue
					}
					if guard == token.NoPos || guard > call.Pos() {
						p.Reportf(call.Pos(),
							"%s costs GPU placement without consulting the health breaker; call Health.AllowGPU first so a faulting device degrades to CPU", name)
					}
					break
				}
				return true
			})
		})
	})
}

// returnsProcKind reports whether the function signature has a direct
// cost.ProcKind result — the shape of every run-time placement decision.
func returnsProcKind(info *types.Info, ftype *ast.FuncType) bool {
	if ftype.Results == nil {
		return false
	}
	for _, field := range ftype.Results.List {
		tv, ok := info.Types[field.Type]
		if !ok || tv.Type == nil {
			continue
		}
		if named, isNamed := tv.Type.(*types.Named); isNamed {
			obj := named.Obj()
			if obj.Name() == "ProcKind" && obj.Pkg() != nil && obj.Pkg().Path() == costPkg {
				return true
			}
		}
	}
	return false
}

// firstAllowGPUCall returns the position of the lexically first
// Health.AllowGPU call in the body, or NoPos.
func firstAllowGPUCall(info *types.Info, body *ast.BlockStmt) token.Pos {
	first := token.NoPos
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if isMethod(calleeFunc(info, call), execPkg, "Health", "AllowGPU") {
			if first == token.NoPos || call.Pos() < first {
				first = call.Pos()
			}
		}
		return true
	})
	return first
}

// isGPUConst reports whether e denotes the cost.GPU constant.
func isGPUConst(info *types.Info, e ast.Expr) bool {
	var id *ast.Ident
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		id = e
	case *ast.SelectorExpr:
		id = e.Sel
	default:
		return false
	}
	obj, ok := info.Uses[id].(*types.Const)
	return ok && obj.Name() == "GPU" && obj.Pkg() != nil && obj.Pkg().Path() == costPkg
}
