package lint

import (
	"go/ast"
	"strings"
)

// KernelPar enforces the bounded-parallelism invariant of the morsel-driven
// kernels: inside the kernel packages (internal/engine, internal/vecengine)
// every goroutine must be spawned through par.Pool (ForEachMorsel/ForEachN),
// never with a raw `go` statement. The pool is what guarantees the worker
// bound, the deterministic lowest-index error, and the bit-identical results
// at every worker count — a raw goroutine sidesteps all three and its
// scheduling order can leak into float accumulation.
var KernelPar = &Analyzer{
	Name: "kernelpar",
	Doc:  "forbid raw go statements in kernel packages; use par.Pool",
	Run:  runKernelPar,
}

// kernelParScoped reports whether the package is one of the kernel packages
// the invariant covers. Golden-test fixtures live under testdata/src/ with
// fixture import paths, so the package *name* is checked too.
func kernelParScoped(pkg *Package) bool {
	if strings.HasSuffix(pkg.Path, "/engine") || strings.HasSuffix(pkg.Path, "/vecengine") {
		return true
	}
	name := pkg.Types.Name()
	return name == "engine" || name == "vecengine"
}

func runKernelPar(p *Pass) {
	if !kernelParScoped(p.Pkg) {
		return
	}
	p.walkFiles(func(f *ast.File) {
		ast.Inspect(f, func(n ast.Node) bool {
			if g, ok := n.(*ast.GoStmt); ok {
				p.Reportf(g.Pos(),
					"raw go statement in kernel package; spawn workers through par.Pool so the worker bound and deterministic results hold")
			}
			return true
		})
	})
}
