package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// LeakCheck enforces the goroutine-lifecycle invariant of the wall-clock
// serving layer (internal/server, internal/admission, internal/obs): every
// goroutine spawned with a raw go statement must have a join or stop path —
// otherwise SIGTERM drain can return while workers still run, and the "zero
// leaked goroutines after Drain" property only holds by luck. Accepted
// evidence, searched interprocedurally through the call graph (the spawned
// function's body plus its callees):
//
//   - a WaitGroup join: the goroutine calls wg.Done() (usually deferred) on
//     a WaitGroup that some function in the program Wait()s on;
//   - a stop channel: the goroutine receives from (or selects on) a channel
//     that some function in the program close()s — the Host.pump / quit
//     pattern;
//   - a drained channel: the goroutine ranges over a channel that is
//     close()d elsewhere, so it exits when the producer finishes.
//
// A goroutine that blocks on channels handed in from outside (parameters)
// is trusted: its stop path belongs to whoever owns the channel. Kernel
// packages are covered by the stricter kernelpar rule (no raw go statements
// at all), and the deterministic engine never spawns.
var LeakCheck = &Analyzer{
	Name:       "leakcheck",
	Doc:        "require every serving-layer goroutine to have a join or stop path (WaitGroup, closed stop channel, or drained channel)",
	RunProgram: runLeakCheck,
}

// leakCheckScoped reports whether the package is part of the serving layer
// the invariant covers (by path suffix or package name, covering fixtures).
func leakCheckScoped(pkg *Package) bool {
	for _, name := range []string{"server", "admission", "obs"} {
		if strings.HasSuffix(pkg.Path, "/"+name) || pkg.Types.Name() == name {
			return true
		}
	}
	return false
}

func runLeakCheck(p *ProgramPass) {
	ev := collectJoinEvidence(p.Prog)
	for _, pkg := range p.Prog.Packages {
		if !leakCheckScoped(pkg) {
			continue
		}
		for _, f := range pkg.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				g, ok := n.(*ast.GoStmt)
				if !ok {
					return true
				}
				if !ev.joinable(p.Prog, pkg, g) {
					p.Reportf(g.Pos(),
						"goroutine has no join or stop path: no WaitGroup.Wait, closed stop channel, or drained channel reaches it, so shutdown/Drain can leak it")
				}
				return true
			})
		}
	}
}

// joinEvidence is the program-wide shutdown vocabulary: channels something
// closes and WaitGroups something waits on.
type joinEvidence struct {
	closedChans map[types.Object]bool
	waitedWGs   map[types.Object]bool
}

// collectJoinEvidence scans every program package for close(ch) calls and
// WaitGroup.Wait() calls, keyed by the channel/WaitGroup variable or field
// object — object identity is program-wide, so a channel closed in Close()
// matches a receive in a goroutine spawned three packages away.
func collectJoinEvidence(prog *Program) *joinEvidence {
	ev := &joinEvidence{
		closedChans: map[types.Object]bool{},
		waitedWGs:   map[types.Object]bool{},
	}
	for _, pkg := range prog.Packages {
		info := pkg.Info
		for _, f := range pkg.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && id.Name == "close" && len(call.Args) == 1 {
					if _, isBuiltin := info.Uses[id].(*types.Builtin); isBuiltin {
						if obj := referencedObj(info, call.Args[0]); obj != nil {
							ev.closedChans[obj] = true
						}
					}
				}
				if fn := calleeFunc(info, call); isMethod(fn, "sync", "WaitGroup", "Wait") {
					if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
						if obj := referencedObj(info, sel.X); obj != nil {
							ev.waitedWGs[obj] = true
						}
					}
				}
				return true
			})
		}
	}
	return ev
}

// referencedObj resolves a variable or field reference to its type-checker
// object: `quit` → the local, `h.quit` → the field. Returns nil for
// anything more indirect.
func referencedObj(info *types.Info, e ast.Expr) types.Object {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		if obj := info.Uses[e]; obj != nil {
			return obj
		}
		return info.Defs[e]
	case *ast.SelectorExpr:
		return info.Uses[e.Sel]
	}
	return nil
}

// joinable reports whether the spawned goroutine carries join/stop evidence,
// searching the goroutine entry body and its callees through the call graph.
func (ev *joinEvidence) joinable(prog *Program, pkg *Package, g *ast.GoStmt) bool {
	if lit, ok := ast.Unparen(g.Call.Fun).(*ast.FuncLit); ok {
		return ev.searchBody(pkg, lit.Body, nil) ||
			ev.searchCallees(prog, pkg, lit.Body, 3)
	}
	fn := calleeFunc(pkg.Info, g.Call)
	if fn == nil {
		return false // spawn through a function value: nothing to trust
	}
	node, ok := prog.CallGraph.Nodes[fn]
	if !ok {
		return false // no source for the callee: cannot verify a stop path
	}
	return ev.searchNode(prog, node, map[*CallNode]bool{}, 3)
}

// searchNode looks for evidence in one call-graph node and, to the given
// depth, its callees.
func (ev *joinEvidence) searchNode(prog *Program, node *CallNode, seen map[*CallNode]bool, depth int) bool {
	if seen[node] {
		return false
	}
	seen[node] = true
	params := paramObjs(node.Func)
	if ev.searchBody(node.Pkg, node.Decl.Body, params) {
		return true
	}
	if depth <= 0 {
		return false
	}
	for _, e := range node.Out {
		if ev.searchNode(prog, e.Callee, seen, depth-1) {
			return true
		}
	}
	return false
}

// searchCallees follows static calls out of a function-literal body.
func (ev *joinEvidence) searchCallees(prog *Program, pkg *Package, body *ast.BlockStmt, depth int) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := calleeFunc(pkg.Info, call)
		if fn == nil {
			return true
		}
		if node, ok := prog.CallGraph.Nodes[fn]; ok {
			if ev.searchNode(prog, node, map[*CallNode]bool{}, depth-1) {
				found = true
			}
		}
		return true
	})
	return found
}

// searchBody scans one body for join/stop evidence. Channel parameters (the
// params set) are trusted: a goroutine blocking on a channel handed in from
// outside delegates its stop path to the channel's owner.
func (ev *joinEvidence) searchBody(pkg *Package, body *ast.BlockStmt, params map[types.Object]bool) bool {
	info := pkg.Info
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		switch n := n.(type) {
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				if obj := referencedObj(info, n.X); obj != nil && (ev.closedChans[obj] || params[obj]) {
					found = true
				}
			}
		case *ast.RangeStmt:
			if tv, ok := info.Types[n.X]; ok {
				if _, isChan := tv.Type.Underlying().(*types.Chan); isChan {
					if obj := referencedObj(info, n.X); obj != nil && (ev.closedChans[obj] || params[obj]) {
						found = true
					}
				}
			}
		case *ast.CallExpr:
			if fn := calleeFunc(info, n); isMethod(fn, "sync", "WaitGroup", "Done") {
				if sel, ok := ast.Unparen(n.Fun).(*ast.SelectorExpr); ok {
					if obj := referencedObj(info, sel.X); obj != nil && ev.waitedWGs[obj] {
						found = true
					}
				}
			}
		}
		return true
	})
	return found
}

// paramObjs returns the set of the function's channel-typed parameter
// objects.
func paramObjs(fn *types.Func) map[types.Object]bool {
	sig, _ := fn.Type().(*types.Signature)
	if sig == nil {
		return nil
	}
	out := map[types.Object]bool{}
	params := sig.Params()
	for i := 0; i < params.Len(); i++ {
		v := params.At(i)
		if _, isChan := v.Type().Underlying().(*types.Chan); isChan {
			out[v] = true
		}
	}
	return out
}
