package lint

import (
	"go/types"
	"strings"
	"testing"
)

// TestProgramDepOrder pins the program assembly invariant every facts pass
// relies on: a package's module-internal imports always precede it in
// Program.Packages.
func TestProgramDepOrder(t *testing.T) {
	pkgs, err := fixtureLoader(t).Load("./...")
	if err != nil {
		t.Fatalf("loading module packages: %v", err)
	}
	prog := NewProgram(pkgs)
	index := map[string]int{}
	for i, pkg := range prog.Packages {
		index[pkg.Path] = i
	}
	for i, pkg := range prog.Packages {
		for _, imp := range pkg.Types.Imports() {
			j, inProgram := index[imp.Path()]
			if inProgram && j >= i {
				t.Errorf("package %s (index %d) imports %s (index %d): dependency not ordered first", pkg.Path, i, imp.Path(), j)
			}
		}
	}
}

// TestCrossPackageFacts runs heapbalance over a consumer package whose every
// release flows through helpers in another package: the leak verdict on the
// error path and the clean verdict on the deferred-helper path both require
// facts imported across the package boundary.
func TestCrossPackageFacts(t *testing.T) {
	user := loadFixture(t, "hbfacts_user")
	helper := loadFixture(t, "hbfacts_helper")
	// Deliberately pass the consumer first: NewProgram must reorder.
	diags := Run([]*Package{user, helper}, []*Analyzer{HeapBalance})
	if len(diags) != 1 {
		t.Fatalf("want exactly 1 cross-package leak diagnostic, got %d: %v", len(diags), diags)
	}
	d := diags[0]
	if !strings.Contains(d.File, "hbfacts_user.go") {
		t.Errorf("diagnostic anchored in wrong file: %s", d)
	}
	if !strings.Contains(d.Message, `device reservation "res" leaks: this return path`) {
		t.Errorf("unexpected diagnostic message: %s", d)
	}
}

// TestFactStore pins the reflect-typed fact round trip on a real object.
func TestFactStore(t *testing.T) {
	helper := loadFixture(t, "hbfacts_helper")
	prog := NewProgram([]*Package{helper})
	fn, ok := helper.Types.Scope().Lookup("ReleaseVia").(*types.Func)
	if !ok {
		t.Fatal("ReleaseVia not found in hbfacts_helper")
	}
	var absent releasesParamsFact
	if prog.ImportFact(fn, &absent) {
		t.Error("ImportFact returned true before any export")
	}
	prog.ExportFact(fn, &releasesParamsFact{Params: []int{0}})
	var got releasesParamsFact
	if !prog.ImportFact(fn, &got) {
		t.Fatal("ImportFact returned false after export")
	}
	if len(got.Params) != 1 || got.Params[0] != 0 {
		t.Errorf("fact round trip corrupted payload: %+v", got)
	}
}

// TestCallGraphCrossPackage asserts the call graph carries edges across
// package boundaries and that reachability follows them.
func TestCallGraphCrossPackage(t *testing.T) {
	user := loadFixture(t, "hbfacts_user")
	helper := loadFixture(t, "hbfacts_helper")
	prog := NewProgram([]*Package{user, helper})
	leak, ok := user.Types.Scope().Lookup("LeakAcrossPackages").(*types.Func)
	if !ok {
		t.Fatal("LeakAcrossPackages not found")
	}
	newScratch, ok := helper.Types.Scope().Lookup("NewScratch").(*types.Func)
	if !ok {
		t.Fatal("NewScratch not found")
	}
	node := prog.CallGraph.Nodes[leak]
	if node == nil {
		t.Fatal("no call-graph node for LeakAcrossPackages")
	}
	foundEdge := false
	for _, e := range node.Out {
		if e.Callee.Func == newScratch {
			foundEdge = true
		}
	}
	if !foundEdge {
		t.Error("missing cross-package call edge LeakAcrossPackages -> NewScratch")
	}
	reach := prog.CallGraph.Reachable([]*types.Func{leak})
	if !reach[newScratch] {
		t.Error("Reachable does not cross the package boundary")
	}
}
