package lint

import (
	"fmt"
	"go/ast"
	"go/build/constraint"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
)

// Package is one parsed and type-checked package under analysis.
type Package struct {
	// Path is the import path ("robustdb/internal/exec").
	Path string
	// Dir is the directory the sources were read from.
	Dir string
	// Fset positions every token of the package (shared across the load).
	Fset *token.FileSet
	// Files are the parsed non-test sources, in file-name order.
	Files []*ast.File
	// Types is the type-checked package.
	Types *types.Package
	// Info records the type of every expression and the object behind every
	// identifier — the ground truth analyzers match against.
	Info *types.Info
}

// Loader parses and type-checks module packages using only the standard
// library: module-internal imports are resolved recursively from source, and
// standard-library imports go through the compiler's source importer. One
// Loader caches every package it sees, so loading ./... type-checks each
// package exactly once.
type Loader struct {
	Fset    *token.FileSet
	root    string // module root directory (holds go.mod)
	modPath string // module path from go.mod
	cache   map[string]*Package
	loading map[string]bool // packages currently being type-checked (cycle detection)
	std     types.ImporterFrom
}

// NewLoader creates a loader for the module containing dir (found by walking
// up to the nearest go.mod).
func NewLoader(dir string) (*Loader, error) {
	root, modPath, err := findModule(dir)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	std, ok := importer.ForCompiler(fset, "source", nil).(types.ImporterFrom)
	if !ok {
		return nil, fmt.Errorf("lint: source importer unavailable")
	}
	return &Loader{
		Fset:    fset,
		root:    root,
		modPath: modPath,
		cache:   map[string]*Package{},
		loading: map[string]bool{},
		std:     std,
	}, nil
}

// ModulePath returns the module path from go.mod.
func (l *Loader) ModulePath() string { return l.modPath }

// findModule walks up from dir to the nearest go.mod and returns the module
// root and module path.
func findModule(dir string) (root, modPath string, err error) {
	dir, err = filepath.Abs(dir)
	if err != nil {
		return "", "", err
	}
	for {
		data, rerr := os.ReadFile(filepath.Join(dir, "go.mod"))
		if rerr == nil {
			for _, line := range strings.Split(string(data), "\n") {
				line = strings.TrimSpace(line)
				if after, ok := strings.CutPrefix(line, "module "); ok {
					return dir, strings.TrimSpace(after), nil
				}
			}
			return "", "", fmt.Errorf("lint: %s/go.mod has no module directive", dir)
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", "", fmt.Errorf("lint: no go.mod found above %s", dir)
		}
		dir = parent
	}
}

// Load expands the patterns (a directory, or a directory followed by /...)
// and returns the matched packages, type-checked. Directories named
// "testdata" or starting with "." or "_" are skipped during expansion, like
// the go tool does.
func (l *Loader) Load(patterns ...string) ([]*Package, error) {
	var dirs []string
	seen := map[string]bool{}
	for _, pat := range patterns {
		expanded, err := l.expand(pat)
		if err != nil {
			return nil, err
		}
		for _, d := range expanded {
			if !seen[d] {
				seen[d] = true
				dirs = append(dirs, d)
			}
		}
	}
	sort.Strings(dirs)
	var pkgs []*Package
	for _, dir := range dirs {
		pkg, err := l.LoadDir(dir)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}

// expand resolves one pattern to package directories (directories containing
// at least one non-test .go file).
func (l *Loader) expand(pattern string) ([]string, error) {
	recursive := false
	if pattern == "..." || strings.HasSuffix(pattern, "/...") {
		recursive = true
		pattern = strings.TrimSuffix(strings.TrimSuffix(pattern, "..."), "/")
		if pattern == "" {
			pattern = "."
		}
	}
	base := pattern
	if !filepath.IsAbs(base) {
		base = filepath.Join(l.root, base)
	}
	base = filepath.Clean(base)
	if !recursive {
		if !hasGoFiles(base) {
			return nil, fmt.Errorf("lint: no Go files in %s", base)
		}
		return []string{base}, nil
	}
	var dirs []string
	err := filepath.WalkDir(base, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != base && (name == "testdata" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
			return filepath.SkipDir
		}
		if hasGoFiles(path) {
			dirs = append(dirs, path)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return dirs, nil
}

func hasGoFiles(dir string) bool {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	for _, e := range entries {
		name := e.Name()
		if !e.IsDir() && strings.HasSuffix(name, ".go") && !strings.HasSuffix(name, "_test.go") {
			return true
		}
	}
	return false
}

// LoadDir parses and type-checks the package in dir (non-test files only).
func (l *Loader) LoadDir(dir string) (*Package, error) {
	dir, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	return l.load(l.importPathFor(dir), dir)
}

// importPathFor maps a directory under the module root to its import path.
func (l *Loader) importPathFor(dir string) string {
	rel, err := filepath.Rel(l.root, dir)
	if err != nil || rel == "." {
		return l.modPath
	}
	return l.modPath + "/" + filepath.ToSlash(rel)
}

// Import resolves an import path for the type checker: module-internal
// paths load from source through the loader, everything else (the standard
// library) goes through the compiler's source importer.
func (l *Loader) Import(path string) (*types.Package, error) {
	if pkg, ok := l.cache[path]; ok {
		return pkg.Types, nil
	}
	if path == l.modPath || strings.HasPrefix(path, l.modPath+"/") {
		rel := strings.TrimPrefix(strings.TrimPrefix(path, l.modPath), "/")
		pkg, err := l.load(path, filepath.Join(l.root, filepath.FromSlash(rel)))
		if err != nil {
			return nil, err
		}
		return pkg.Types, nil
	}
	return l.std.ImportFrom(path, l.root, 0)
}

func (l *Loader) load(path, dir string) (*Package, error) {
	if pkg, ok := l.cache[path]; ok {
		return pkg, nil
	}
	// Type-checking a package recurses through Import for each module-internal
	// dependency; re-entering a package still being checked means the module
	// has an import cycle, which must surface as a clean diagnostic rather
	// than unbounded recursion.
	if l.loading[path] {
		return nil, fmt.Errorf("lint: import cycle through %s", path)
	}
	l.loading[path] = true
	defer delete(l.loading, path)
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("lint: %s: %w", path, err)
	}
	var files []*ast.File
	excluded := 0
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		src, rerr := os.ReadFile(filepath.Join(dir, name))
		if rerr != nil {
			return nil, fmt.Errorf("lint: %s: %w", path, rerr)
		}
		if !buildTagsSatisfied(src) {
			excluded++
			continue
		}
		f, perr := parser.ParseFile(l.Fset, filepath.Join(dir, name), src, parser.ParseComments)
		if perr != nil {
			return nil, fmt.Errorf("lint: %s: %w", path, perr)
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		if excluded > 0 {
			return nil, fmt.Errorf("lint: all %d Go files in %s are excluded by build constraints", excluded, dir)
		}
		return nil, fmt.Errorf("lint: no Go files in %s", dir)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
	}
	conf := types.Config{Importer: l}
	tpkg, err := conf.Check(path, l.Fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("lint: type-checking %s: %w", path, err)
	}
	pkg := &Package{Path: path, Dir: dir, Fset: l.Fset, Files: files, Types: tpkg, Info: info}
	l.cache[path] = pkg
	return pkg, nil
}

// buildTagsSatisfied reports whether the file's //go:build constraint (if
// any) is satisfied for the host platform, mirroring what the go tool would
// compile. Only the leading comment block is consulted; files without a
// constraint are always included. Unknown tags evaluate to false, so files
// gated on `ignore`, another OS, or a custom tag are skipped instead of
// breaking the type check with duplicate or dangling declarations.
func buildTagsSatisfied(src []byte) bool {
	for _, line := range strings.Split(string(src), "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "//") && !constraint.IsGoBuild(line) {
			continue
		}
		if !constraint.IsGoBuild(line) {
			// First non-comment line: the constraint block is over.
			return true
		}
		expr, err := constraint.Parse(line)
		if err != nil {
			return true // malformed constraint: let the type checker decide
		}
		return expr.Eval(func(tag string) bool {
			switch tag {
			case runtime.GOOS, runtime.GOARCH, "gc", "unix":
				// "unix" is correct for every platform this repo targets
				// (linux CI and darwin laptops).
				return true
			}
			// Released Go versions satisfy go1.N tags up to the toolchain's
			// own version; assuming they hold matches a current toolchain.
			return strings.HasPrefix(tag, "go1.")
		})
	}
	return true
}
