package lint

import (
	"go/ast"
	"strings"
)

// VirtualTime enforces the engine's determinism invariant: chaos runs replay
// bit-for-bit from a seed, so deterministic code (the virtual-time simulator
// and everything scheduled on it — internal/exec, internal/faults,
// internal/sim, internal/workload, internal/chopping, internal/cache) must
// never read the wall clock or draw from unseeded randomness. The analyzer
// is enforced repo-wide so nothing non-deterministic creeps in behind a
// package boundary; the one legitimate wall-clock consumer (benchfig's
// operator-facing progress timing) carries //lint:ignore annotations.
// _test.go files are never loaded, so tests are exempt by construction.
//
// The real-time serving layer — internal/server and internal/admission —
// is exempt as a whole: it sits between wall-clock network clients and the
// deterministic engine, and queue timeouts, Retry-After hints, and drain
// deadlines are wall-clock quantities by design. The boundary is the Host
// pump: everything submitted through it still runs in virtual time.
var VirtualTime = &Analyzer{
	Name: "virtualtime",
	Doc:  "forbid wall-clock time and unseeded randomness in deterministic code",
	Run:  runVirtualTime,
}

// wallClockFuncs are the package time functions that read or wait on the
// real clock. Types and constants (time.Duration, time.Millisecond) remain
// legal: virtual time is *measured* in time.Duration.
var wallClockFuncs = map[string]bool{
	"Now": true, "Sleep": true, "After": true, "AfterFunc": true,
	"Tick": true, "NewTimer": true, "NewTicker": true,
	"Since": true, "Until": true,
}

// seededRandFuncs are the math/rand constructors that take an explicit seed
// or source and therefore stay reproducible.
var seededRandFuncs = map[string]bool{
	"New": true, "NewSource": true, "NewZipf": true,
	"NewPCG": true, "NewChaCha8": true,
}

// virtualTimeExemptPkg reports whether the package is part of the wall-clock
// serving layer (see the analyzer doc). Matching by path suffix or package
// name covers both the real packages and their golden-test fixtures.
func virtualTimeExemptPkg(p *Pass) bool {
	for _, name := range []string{"server", "admission"} {
		if strings.HasSuffix(p.Pkg.Path, "/"+name) || p.Pkg.Types.Name() == name {
			return true
		}
	}
	return false
}

func runVirtualTime(p *Pass) {
	if virtualTimeExemptPkg(p) {
		return
	}
	info := p.Pkg.Info
	p.walkFiles(func(f *ast.File) {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := calleeFunc(info, call)
			if fn == nil || fn.Pkg() == nil {
				return true
			}
			if _, _, isMeth := receiverOf(fn); isMeth {
				// Methods on *rand.Rand / *time.Timer operate on values whose
				// construction was already checked.
				return true
			}
			switch fn.Pkg().Path() {
			case "time":
				if wallClockFuncs[fn.Name()] {
					p.Reportf(call.Pos(),
						"time.%s reads the wall clock; deterministic code must use virtual sim time (sim.Proc.Now/Hold)",
						fn.Name())
				}
			case "math/rand", "math/rand/v2":
				if !seededRandFuncs[fn.Name()] {
					p.Reportf(call.Pos(),
						"rand.%s draws from an unseeded global source; use a seeded *rand.Rand (rand.New(rand.NewSource(seed))) so chaos runs replay bit-for-bit",
						fn.Name())
				}
			}
			return true
		})
	})
}
