package lint

import (
	"go/ast"
)

// VirtualTime enforces the engine's determinism invariant: chaos runs replay
// bit-for-bit from a seed, so deterministic code (the virtual-time simulator
// and everything scheduled on it — internal/exec, internal/faults,
// internal/sim, internal/workload, internal/chopping, internal/cache) must
// never read the wall clock or draw from unseeded randomness. The analyzer
// is enforced repo-wide so nothing non-deterministic creeps in behind a
// package boundary; the one legitimate wall-clock consumer (benchfig's
// operator-facing progress timing) carries //lint:ignore annotations.
// _test.go files are never loaded, so tests are exempt by construction.
var VirtualTime = &Analyzer{
	Name: "virtualtime",
	Doc:  "forbid wall-clock time and unseeded randomness in deterministic code",
	Run:  runVirtualTime,
}

// wallClockFuncs are the package time functions that read or wait on the
// real clock. Types and constants (time.Duration, time.Millisecond) remain
// legal: virtual time is *measured* in time.Duration.
var wallClockFuncs = map[string]bool{
	"Now": true, "Sleep": true, "After": true, "AfterFunc": true,
	"Tick": true, "NewTimer": true, "NewTicker": true,
	"Since": true, "Until": true,
}

// seededRandFuncs are the math/rand constructors that take an explicit seed
// or source and therefore stay reproducible.
var seededRandFuncs = map[string]bool{
	"New": true, "NewSource": true, "NewZipf": true,
	"NewPCG": true, "NewChaCha8": true,
}

func runVirtualTime(p *Pass) {
	info := p.Pkg.Info
	p.walkFiles(func(f *ast.File) {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := calleeFunc(info, call)
			if fn == nil || fn.Pkg() == nil {
				return true
			}
			if _, _, isMeth := receiverOf(fn); isMeth {
				// Methods on *rand.Rand / *time.Timer operate on values whose
				// construction was already checked.
				return true
			}
			switch fn.Pkg().Path() {
			case "time":
				if wallClockFuncs[fn.Name()] {
					p.Reportf(call.Pos(),
						"time.%s reads the wall clock; deterministic code must use virtual sim time (sim.Proc.Now/Hold)",
						fn.Name())
				}
			case "math/rand", "math/rand/v2":
				if !seededRandFuncs[fn.Name()] {
					p.Reportf(call.Pos(),
						"rand.%s draws from an unseeded global source; use a seeded *rand.Rand (rand.New(rand.NewSource(seed))) so chaos runs replay bit-for-bit",
						fn.Name())
				}
			}
			return true
		})
	})
}
