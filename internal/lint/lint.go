// Package lint is robustdb's static-analysis framework: a small,
// standard-library-only analogue of golang.org/x/tools/go/analysis that
// enforces the engine invariants the compiler cannot see — device-heap
// balance, virtual-time determinism, surfaced errors, lock discipline, and
// health-guarded GPU placement. The paper's robustness claims (never slower
// than CPU-only, clean recovery from aborts) rest on exactly these
// invariants; catching a violation at analysis time is cheaper than finding
// it in a chaos run.
//
// Analyzers are table-registered in Analyzers; adding one is ~50 lines: a
// declaration with a Run func over a type-checked Pass, plus a golden test
// fixture under testdata/src. The framework supplies package loading and
// type checking (load.go), `file:line:col` diagnostics, per-line
// `//lint:ignore <analyzer> <reason>` suppression, and JSON output for
// tooling.
package lint

import (
	"encoding/json"
	"fmt"
	"go/ast"
	"go/token"
	"io"
	"sort"
	"strings"
)

// Analyzer is one named invariant check. Run inspects a single type-checked
// package and reports violations through the Pass.
type Analyzer struct {
	// Name is the identifier used on the command line and in
	// //lint:ignore directives.
	Name string
	// Doc is a one-line description of the guarded invariant.
	Doc string
	// Run executes the analyzer over one package.
	Run func(*Pass)
}

// Analyzers is the registry of all shipped analyzers, in reporting order.
// Future analyzers register here.
var Analyzers = []*Analyzer{
	HeapBalance,
	VirtualTime,
	ErrDrop,
	LockCopy,
	LockHold,
	PlacementGuard,
	KernelPar,
	WireStatus,
}

// ByName returns the registered analyzer with the given name, or nil.
func ByName(name string) *Analyzer {
	for _, a := range Analyzers {
		if a.Name == name {
			return a
		}
	}
	return nil
}

// Pass carries one type-checked package through one analyzer.
type Pass struct {
	Analyzer *Analyzer
	Pkg      *Package
	report   func(Diagnostic)
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	position := p.Pkg.Fset.Position(pos)
	p.report(Diagnostic{
		Analyzer: p.Analyzer.Name,
		File:     position.Filename,
		Line:     position.Line,
		Col:      position.Column,
		Message:  fmt.Sprintf(format, args...),
	})
}

// Diagnostic is one reported invariant violation.
type Diagnostic struct {
	Analyzer string `json:"analyzer"`
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Message  string `json:"message"`
}

// String formats the diagnostic in the conventional file:line:col form.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s (%s)", d.File, d.Line, d.Col, d.Message, d.Analyzer)
}

// Run executes the analyzers over the packages and returns the surviving
// diagnostics sorted by position. Diagnostics on a line carrying (or
// directly below) a matching //lint:ignore directive are suppressed;
// malformed directives are themselves reported.
func Run(pkgs []*Package, analyzers []*Analyzer) []Diagnostic {
	var diags []Diagnostic
	for _, pkg := range pkgs {
		ignores, bad := collectIgnores(pkg)
		diags = append(diags, bad...)
		for _, a := range analyzers {
			pass := &Pass{Analyzer: a, Pkg: pkg, report: func(d Diagnostic) {
				if !ignores.matches(d) {
					diags = append(diags, d)
				}
			}}
			a.Run(pass)
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		return a.Analyzer < b.Analyzer
	})
	return diags
}

// WriteText prints diagnostics one per line in file:line:col form.
func WriteText(w io.Writer, diags []Diagnostic) {
	for _, d := range diags {
		fmt.Fprintln(w, d)
	}
}

// WriteJSON prints diagnostics as a JSON array.
func WriteJSON(w io.Writer, diags []Diagnostic) error {
	if diags == nil {
		diags = []Diagnostic{}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(diags)
}

// ignoreSet maps file → line → analyzer names suppressed on that line.
type ignoreSet map[string]map[int][]string

// matches reports whether d is suppressed by a directive on its own line or
// the line directly above (the two placements gofmt preserves).
func (s ignoreSet) matches(d Diagnostic) bool {
	lines := s[d.File]
	if lines == nil {
		return false
	}
	for _, line := range []int{d.Line, d.Line - 1} {
		for _, name := range lines[line] {
			if name == d.Analyzer || name == "all" {
				return true
			}
		}
	}
	return false
}

const ignorePrefix = "lint:ignore"

// collectIgnores scans a package's comments for //lint:ignore directives.
// A directive names one analyzer (or a comma list, or "all") and must give a
// reason; directives without a reason are reported as diagnostics so a
// suppression can never silently lose its justification.
func collectIgnores(pkg *Package) (ignoreSet, []Diagnostic) {
	set := ignoreSet{}
	var bad []Diagnostic
	for _, f := range pkg.Files {
		for _, group := range f.Comments {
			for _, c := range group.List {
				text := strings.TrimPrefix(c.Text, "//")
				text = strings.TrimSpace(text)
				if !strings.HasPrefix(text, ignorePrefix) {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				fields := strings.Fields(strings.TrimPrefix(text, ignorePrefix))
				if len(fields) < 2 {
					bad = append(bad, Diagnostic{
						Analyzer: "lint",
						File:     pos.Filename,
						Line:     pos.Line,
						Col:      pos.Column,
						Message:  "malformed //lint:ignore directive: want `//lint:ignore <analyzer> <reason>`",
					})
					continue
				}
				lines := set[pos.Filename]
				if lines == nil {
					lines = map[int][]string{}
					set[pos.Filename] = lines
				}
				lines[pos.Line] = append(lines[pos.Line], strings.Split(fields[0], ",")...)
			}
		}
	}
	return set, bad
}

// walkFiles applies fn to every file of the package.
func (p *Pass) walkFiles(fn func(*ast.File)) {
	for _, f := range p.Pkg.Files {
		fn(f)
	}
}
