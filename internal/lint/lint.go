// Package lint is robustdb's static-analysis framework: a small,
// standard-library-only analogue of golang.org/x/tools/go/analysis that
// enforces the engine invariants the compiler cannot see — device-heap
// balance, virtual-time determinism, surfaced errors, lock discipline,
// health-guarded GPU placement, and the request-path lifecycle rules behind
// the serving layer. The paper's robustness claims (never slower than
// CPU-only, clean recovery from aborts) rest on exactly these invariants;
// catching a violation at analysis time is cheaper than finding it in a
// chaos run.
//
// The framework is whole-program: Run assembles every loaded package into a
// Program — dependency-ordered packages, a CHA call graph, and a
// cross-package fact store — so analyzers come in three shapes:
//
//   - Run: intra-procedural, one package at a time (the original shape).
//   - Facts: a dependency-ordered pass that exports per-function summaries
//     ("this helper releases its reservation argument") other packages'
//     passes import — the interprocedural heapbalance extension.
//   - RunProgram: one pass over the whole Program with the call graph in
//     hand — ctxflow's request-path reachability and leakcheck's
//     goroutine-join search.
//
// Analyzers are table-registered in Analyzers; adding one is ~50 lines: a
// declaration with a Run (or RunProgram) func, plus a golden test fixture
// under testdata/src. The framework supplies package loading and type
// checking (load.go), `file:line:col` diagnostics, per-line
// `//lint:ignore <analyzer> <reason>` suppression with a staleness audit,
// and JSON output for tooling.
package lint

import (
	"encoding/json"
	"fmt"
	"go/ast"
	"go/token"
	"io"
	"sort"
	"strings"
)

// Analyzer is one named invariant check. At least one of Run and RunProgram
// must be set; Facts is optional and runs before either.
type Analyzer struct {
	// Name is the identifier used on the command line and in
	// //lint:ignore directives.
	Name string
	// Doc is a one-line description of the guarded invariant.
	Doc string
	// Run executes the analyzer over one package (intra-procedural).
	Run func(*Pass)
	// Facts, when set, runs over every program package in dependency order
	// before any Run/RunProgram pass, exporting per-object summaries through
	// Pass.Prog. Facts passes must not report diagnostics.
	Facts func(*Pass)
	// RunProgram executes the analyzer once over the whole program
	// (interprocedural; the call graph and all facts are available).
	RunProgram func(*ProgramPass)
}

// Analyzers is the registry of all shipped analyzers, in reporting order.
// Future analyzers register here.
var Analyzers = []*Analyzer{
	HeapBalance,
	VirtualTime,
	ErrDrop,
	LockCopy,
	LockHold,
	PlacementGuard,
	KernelPar,
	WireStatus,
	CtxFlow,
	LeakCheck,
}

// ByName returns the registered analyzer with the given name, or nil.
func ByName(name string) *Analyzer {
	for _, a := range Analyzers {
		if a.Name == name {
			return a
		}
	}
	return nil
}

// Pass carries one type-checked package through one analyzer.
type Pass struct {
	Analyzer *Analyzer
	Pkg      *Package
	// Prog is the whole-program view (always set by Run; analyzers degrade
	// to intra-procedural behavior when facts or graph edges are absent).
	Prog   *Program
	report func(Diagnostic)
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	position := p.Pkg.Fset.Position(pos)
	p.report(Diagnostic{
		Analyzer: p.Analyzer.Name,
		File:     position.Filename,
		Line:     position.Line,
		Col:      position.Column,
		Message:  fmt.Sprintf(format, args...),
	})
}

// ProgramPass carries the whole program through one interprocedural
// analyzer.
type ProgramPass struct {
	Analyzer *Analyzer
	Prog     *Program
	Fset     *token.FileSet
	report   func(Diagnostic)
}

// Reportf records a diagnostic at pos.
func (p *ProgramPass) Reportf(pos token.Pos, format string, args ...any) {
	position := p.Fset.Position(pos)
	p.report(Diagnostic{
		Analyzer: p.Analyzer.Name,
		File:     position.Filename,
		Line:     position.Line,
		Col:      position.Column,
		Message:  fmt.Sprintf(format, args...),
	})
}

// Diagnostic is one reported invariant violation.
type Diagnostic struct {
	Analyzer string `json:"analyzer"`
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Message  string `json:"message"`
}

// String formats the diagnostic in the conventional file:line:col form.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s (%s)", d.File, d.Line, d.Col, d.Message, d.Analyzer)
}

// Options tunes a Run.
type Options struct {
	// NoStaleCheck disables the stale-suppression audit (a //lint:ignore
	// directive that suppresses nothing is normally itself a diagnostic).
	NoStaleCheck bool
}

// Run executes the analyzers over the packages with default options. See
// RunWith.
func Run(pkgs []*Package, analyzers []*Analyzer) []Diagnostic {
	return RunWith(pkgs, analyzers, Options{})
}

// RunWith assembles the packages into a Program, executes every fact pass in
// dependency order, then every per-package and whole-program pass, and
// returns the surviving diagnostics sorted by position. Diagnostics on a
// line carrying (or directly below) a matching //lint:ignore directive are
// suppressed; malformed directives, and directives that suppressed nothing
// while every analyzer they name was running (stale suppressions), are
// themselves reported.
func RunWith(pkgs []*Package, analyzers []*Analyzer, opts Options) []Diagnostic {
	prog := NewProgram(pkgs)
	ignores := ignoreSet{}
	var diags []Diagnostic
	for _, pkg := range prog.Packages {
		diags = append(diags, collectIgnores(pkg, ignores)...)
	}
	report := func(d Diagnostic) {
		if !ignores.suppress(d) {
			diags = append(diags, d)
		}
	}
	discard := func(Diagnostic) {}
	for _, a := range analyzers {
		if a.Facts == nil {
			continue
		}
		for _, pkg := range prog.Packages {
			a.Facts(&Pass{Analyzer: a, Pkg: pkg, Prog: prog, report: discard})
		}
	}
	for _, a := range analyzers {
		if a.Run != nil {
			for _, pkg := range prog.Packages {
				a.Run(&Pass{Analyzer: a, Pkg: pkg, Prog: prog, report: report})
			}
		}
		if a.RunProgram != nil {
			a.RunProgram(&ProgramPass{Analyzer: a, Prog: prog, Fset: fsetOf(prog), report: report})
		}
	}
	if !opts.NoStaleCheck {
		diags = append(diags, ignores.stale(analyzers)...)
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		return a.Analyzer < b.Analyzer
	})
	return diags
}

// fsetOf returns the program's shared file set (every loader shares one).
func fsetOf(prog *Program) *token.FileSet {
	for _, pkg := range prog.Packages {
		return pkg.Fset
	}
	return token.NewFileSet()
}

// WriteText prints diagnostics one per line in file:line:col form.
func WriteText(w io.Writer, diags []Diagnostic) {
	for _, d := range diags {
		fmt.Fprintln(w, d)
	}
}

// WriteJSON prints diagnostics as a JSON array.
func WriteJSON(w io.Writer, diags []Diagnostic) error {
	if diags == nil {
		diags = []Diagnostic{}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(diags)
}

// ignoreDirective is one //lint:ignore comment: the analyzers it names and
// whether it suppressed at least one diagnostic this run.
type ignoreDirective struct {
	names []string
	file  string
	line  int
	col   int
	used  bool
}

// ignoreSet maps file → line → directives placed on that line.
type ignoreSet map[string]map[int][]*ignoreDirective

// suppress reports whether d is silenced by a directive on its own line or
// the line directly above (the two placements gofmt preserves), marking the
// matching directive as used for the staleness audit.
func (s ignoreSet) suppress(d Diagnostic) bool {
	lines := s[d.File]
	if lines == nil {
		return false
	}
	for _, line := range []int{d.Line, d.Line - 1} {
		for _, dir := range lines[line] {
			for _, name := range dir.names {
				if name == d.Analyzer || name == "all" {
					dir.used = true
					return true
				}
			}
		}
	}
	return false
}

// stale reports every directive that suppressed nothing even though each
// analyzer it names was running — the suppression ledger's honesty check: as
// analyzers improve (or the code under them gets fixed), an ignore without a
// matching finding is dead weight that would silently mask a future
// regression. Directives naming an analyzer outside the running set are
// skipped (a partial -enable run cannot judge them); "all" is judged only
// when the full registry ran.
func (s ignoreSet) stale(running []*Analyzer) []Diagnostic {
	names := map[string]bool{}
	for _, a := range running {
		names[a.Name] = true
	}
	full := len(running) == len(Analyzers)
	var diags []Diagnostic
	for _, lines := range s {
		for _, dirs := range lines {
			for _, dir := range dirs {
				if dir.used {
					continue
				}
				auditable := true
				for _, name := range dir.names {
					if name == "all" {
						auditable = auditable && full
					} else if !names[name] {
						auditable = false
					}
				}
				if !auditable {
					continue
				}
				diags = append(diags, Diagnostic{
					Analyzer: "lint",
					File:     dir.file,
					Line:     dir.line,
					Col:      dir.col,
					Message: fmt.Sprintf("stale //lint:ignore %s directive: it suppresses no diagnostic on this line",
						strings.Join(dir.names, ",")),
				})
			}
		}
	}
	return diags
}

const ignorePrefix = "lint:ignore"

// collectIgnores scans a package's comments for //lint:ignore directives,
// adding them to the set. A directive names one analyzer (or a comma list,
// or "all") and must give a reason; directives without a reason are reported
// as diagnostics so a suppression can never silently lose its justification.
func collectIgnores(pkg *Package, set ignoreSet) []Diagnostic {
	var bad []Diagnostic
	for _, f := range pkg.Files {
		for _, group := range f.Comments {
			for _, c := range group.List {
				text := strings.TrimPrefix(c.Text, "//")
				text = strings.TrimSpace(text)
				if !strings.HasPrefix(text, ignorePrefix) {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				fields := strings.Fields(strings.TrimPrefix(text, ignorePrefix))
				if len(fields) < 2 {
					bad = append(bad, Diagnostic{
						Analyzer: "lint",
						File:     pos.Filename,
						Line:     pos.Line,
						Col:      pos.Column,
						Message:  "malformed //lint:ignore directive: want `//lint:ignore <analyzer> <reason>`",
					})
					continue
				}
				lines := set[pos.Filename]
				if lines == nil {
					lines = map[int][]*ignoreDirective{}
					set[pos.Filename] = lines
				}
				lines[pos.Line] = append(lines[pos.Line], &ignoreDirective{
					names: strings.Split(fields[0], ","),
					file:  pos.Filename,
					line:  pos.Line,
					col:   pos.Column,
				})
			}
		}
	}
	return bad
}

// walkFiles applies fn to every file of the package.
func (p *Pass) walkFiles(fn func(*ast.File)) {
	for _, f := range p.Pkg.Files {
		fn(f)
	}
}
