package lint

import (
	"go/ast"
	"go/types"
	"sort"
)

// CallGraph is a class-hierarchy-analysis (CHA) call graph over a Program:
// one node per function or method with source in the program, one edge per
// call site. Static calls resolve exactly; calls through interface methods
// resolve to every program type implementing the interface (the CHA
// over-approximation — sound for reachability, never for absence). Calls
// through function-typed values stay unresolved, so analyzers must treat
// them as ownership/control escapes.
//
// Function literals are attributed to their enclosing declaration: a call
// made inside a closure (including one launched by `go`) is an edge from the
// declaring function. The GoEdge flag marks edges whose call site is the
// immediate call of a go statement.
type CallGraph struct {
	// Nodes maps every function with source in the program to its node.
	Nodes map[*types.Func]*CallNode
}

// CallNode is one function in the call graph.
type CallNode struct {
	// Func is the type-checker object of the function or method.
	Func *types.Func
	// Decl is the declaration carrying the body.
	Decl *ast.FuncDecl
	// Pkg is the package the declaration lives in.
	Pkg *Package
	// Out are the calls this function makes (in source order per body walk).
	Out []*CallEdge
	// In are the calls made to this function.
	In []*CallEdge
}

// CallEdge is one call site.
type CallEdge struct {
	Caller, Callee *CallNode
	// Site is the call expression (inside Caller's body, possibly within a
	// nested function literal).
	Site *ast.CallExpr
	// GoEdge marks the immediate call of a go statement: the callee runs on
	// a new goroutine, so control never returns along this edge.
	GoEdge bool
	// Dynamic marks CHA-resolved interface dispatch: one of possibly many
	// implementations, not a proven runtime target.
	Dynamic bool
}

// buildCallGraph constructs the graph over every package of the program.
func buildCallGraph(prog *Program) *CallGraph {
	g := &CallGraph{Nodes: map[*types.Func]*CallNode{}}
	// Pass 1: a node per declared function, plus the CHA method index.
	methodIndex := map[string][]*types.Func{}
	for _, pkg := range prog.Packages {
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				fn, ok := pkg.Info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				g.Nodes[fn] = &CallNode{Func: fn, Decl: fd, Pkg: pkg}
			}
		}
		indexMethods(pkg.Types, methodIndex)
	}
	// Pass 2: edges.
	for _, node := range g.Nodes {
		g.addEdges(node, methodIndex)
	}
	// Deterministic In order (Out order follows the body walk already).
	for _, node := range g.Nodes {
		sort.SliceStable(node.In, func(i, j int) bool {
			return node.In[i].Site.Pos() < node.In[j].Site.Pos()
		})
	}
	return g
}

// indexMethods records every method of every named type declared at package
// scope, keyed by method name — the candidate set CHA resolves interface
// calls against.
func indexMethods(tpkg *types.Package, index map[string][]*types.Func) {
	scope := tpkg.Scope()
	for _, name := range scope.Names() {
		tn, ok := scope.Lookup(name).(*types.TypeName)
		if !ok || tn.IsAlias() {
			continue
		}
		named, ok := tn.Type().(*types.Named)
		if !ok {
			continue
		}
		for i := 0; i < named.NumMethods(); i++ {
			m := named.Method(i)
			index[m.Name()] = append(index[m.Name()], m)
		}
	}
}

// addEdges walks one declaration body (closures included) and links every
// resolvable call site.
func (g *CallGraph) addEdges(node *CallNode, methodIndex map[string][]*types.Func) {
	goCalls := map[*ast.CallExpr]bool{}
	ast.Inspect(node.Decl.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.GoStmt:
			goCalls[n.Call] = true
		case *ast.CallExpr:
			g.linkCall(node, n, goCalls[n], methodIndex)
		}
		return true
	})
}

// linkCall resolves one call site to its callee(s) and appends edges.
func (g *CallGraph) linkCall(caller *CallNode, call *ast.CallExpr, isGo bool, methodIndex map[string][]*types.Func) {
	info := caller.Pkg.Info
	// Static resolution: direct function or concrete-method call.
	if fn := calleeFunc(info, call); fn != nil {
		if iface := interfaceMethodOf(info, call, fn); iface != nil {
			// Interface dispatch: CHA over every implementing program type.
			for _, cand := range methodIndex[fn.Name()] {
				callee, ok := g.Nodes[cand]
				if !ok || !implementsFor(cand, iface) {
					continue
				}
				edge := &CallEdge{Caller: caller, Callee: callee, Site: call, GoEdge: isGo, Dynamic: true}
				caller.Out = append(caller.Out, edge)
				callee.In = append(callee.In, edge)
			}
			return
		}
		if callee, ok := g.Nodes[fn]; ok {
			edge := &CallEdge{Caller: caller, Callee: callee, Site: call, GoEdge: isGo}
			caller.Out = append(caller.Out, edge)
			callee.In = append(callee.In, edge)
		}
	}
}

// interfaceMethodOf returns the interface type a call dispatches through, or
// nil for a statically bound call.
func interfaceMethodOf(info *types.Info, call *ast.CallExpr, fn *types.Func) *types.Interface {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return nil
	}
	selection, ok := info.Selections[sel]
	if !ok || selection.Kind() != types.MethodVal {
		return nil
	}
	iface, _ := selection.Recv().Underlying().(*types.Interface)
	return iface
}

// implementsFor reports whether the method's receiver type (value or
// pointer) implements the interface — the CHA candidate filter.
func implementsFor(m *types.Func, iface *types.Interface) bool {
	sig, _ := m.Type().(*types.Signature)
	if sig == nil || sig.Recv() == nil {
		return false
	}
	recv := sig.Recv().Type()
	if types.Implements(recv, iface) {
		return true
	}
	if _, isPtr := recv.(*types.Pointer); !isPtr {
		return types.Implements(types.NewPointer(recv), iface)
	}
	return false
}

// Reachable computes the set of functions reachable from the roots by
// following every edge kind (static, dynamic, go-spawned).
func (g *CallGraph) Reachable(roots []*types.Func) map[*types.Func]bool {
	reached := map[*types.Func]bool{}
	var stack []*CallNode
	for _, r := range roots {
		if node, ok := g.Nodes[r]; ok && !reached[r] {
			reached[r] = true
			stack = append(stack, node)
		}
	}
	for len(stack) > 0 {
		node := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, e := range node.Out {
			if !reached[e.Callee.Func] {
				reached[e.Callee.Func] = true
				stack = append(stack, e.Callee)
			}
		}
	}
	return reached
}
