package lint

import (
	"go/ast"
	"go/types"
)

// calleeFunc resolves a call expression to the function or method object it
// invokes. It returns nil for conversions, builtins, and calls through
// function-typed values — callees no analyzer can see through.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	f, _ := info.Uses[id].(*types.Func)
	return f
}

// receiverOf returns the defining package path and type name of a method's
// receiver (pointer receivers are dereferenced). ok is false for
// package-level functions and interface methods without a named receiver.
func receiverOf(f *types.Func) (pkgPath, typeName string, ok bool) {
	sig, _ := f.Type().(*types.Signature)
	if sig == nil || sig.Recv() == nil {
		return "", "", false
	}
	t := sig.Recv().Type()
	if ptr, isPtr := t.(*types.Pointer); isPtr {
		t = ptr.Elem()
	}
	named, isNamed := t.(*types.Named)
	if !isNamed {
		return "", "", false
	}
	obj := named.Obj()
	if obj.Pkg() == nil {
		return "", "", false
	}
	return obj.Pkg().Path(), obj.Name(), true
}

// isMethod reports whether f is the named method on the named type.
func isMethod(f *types.Func, pkgPath, typeName, name string) bool {
	if f == nil || f.Name() != name {
		return false
	}
	p, t, ok := receiverOf(f)
	return ok && p == pkgPath && t == typeName
}

// isPkgFunc reports whether f is the named package-level function.
func isPkgFunc(f *types.Func, pkgPath, name string) bool {
	if f == nil || f.Name() != name || f.Pkg() == nil {
		return false
	}
	if _, _, isMeth := receiverOf(f); isMeth {
		return false
	}
	return f.Pkg().Path() == pkgPath
}

// resultsError reports whether the call's result tuple ends in an error (the
// convention every engine API follows), so discarding it hides a failure.
func resultsError(info *types.Info, call *ast.CallExpr) bool {
	tv, ok := info.Types[call]
	if !ok {
		return false
	}
	switch t := tv.Type.(type) {
	case *types.Tuple:
		return t.Len() > 0 && isErrorType(t.At(t.Len()-1).Type())
	default:
		return isErrorType(tv.Type)
	}
}

var errorType = types.Universe.Lookup("error").Type().Underlying().(*types.Interface)

func isErrorType(t types.Type) bool {
	return types.Implements(t, errorType)
}

// funcBodies visits every function body in the file — declarations and
// function literals — with the enclosing declaration's name for messages.
func funcBodies(f *ast.File, fn func(name string, ftype *ast.FuncType, body *ast.BlockStmt)) {
	ast.Inspect(f, func(n ast.Node) bool {
		switch d := n.(type) {
		case *ast.FuncDecl:
			if d.Body != nil {
				fn(d.Name.Name, d.Type, d.Body)
			}
		case *ast.FuncLit:
			fn("func literal", d.Type, d.Body)
		}
		return true
	})
}
