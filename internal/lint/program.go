package lint

import (
	"go/types"
	"reflect"
)

// Program is the whole-program view the interprocedural analyzers run over:
// every package handed to Run, sorted into dependency order, plus the
// CHA-style call graph spanning them and the cross-package fact store.
//
// A Program is as large as the package set it was built from. Golden-test
// fixtures form single-package programs (every interprocedural edge stays
// inside the fixture); CI builds one Program from ./... so invariants that
// span the server → admission → exec → device layering become visible.
type Program struct {
	// Packages are the analyzed packages in dependency order: every
	// program-internal import of a package precedes it. Facts passes walk
	// this order so callee summaries exist before their callers are visited.
	Packages []*Package
	// CallGraph is the CHA call graph over all Packages.
	CallGraph *CallGraph

	byTypes map[*types.Package]*Package
	facts   map[factKey]any
}

// factKey identifies one exported fact: the object it describes plus the
// concrete fact type, so independent analyzers can annotate the same object
// without colliding.
type factKey struct {
	obj types.Object
	typ reflect.Type
}

// NewProgram assembles the whole-program view from the loaded packages.
func NewProgram(pkgs []*Package) *Program {
	prog := &Program{
		byTypes: make(map[*types.Package]*Package, len(pkgs)),
		facts:   map[factKey]any{},
	}
	for _, pkg := range pkgs {
		prog.byTypes[pkg.Types] = pkg
	}
	prog.Packages = sortByDeps(pkgs, prog.byTypes)
	prog.CallGraph = buildCallGraph(prog)
	return prog
}

// Package maps a type-checker package back to its loaded source package, or
// nil when the package is outside the program (standard library, or a module
// package not covered by the current patterns).
func (p *Program) Package(tp *types.Package) *Package { return p.byTypes[tp] }

// ExportFact records a fact about obj (typically a *types.Func summary
// computed by an analyzer's Facts pass). The fact must be a pointer type;
// one fact per (object, fact type) pair, last write wins.
func (p *Program) ExportFact(obj types.Object, fact any) {
	p.facts[factKey{obj: obj, typ: reflect.TypeOf(fact)}] = fact
}

// ImportFact loads the fact of ptr's type about obj into ptr, reporting
// whether one was exported. ptr must be a non-nil pointer of the same
// concrete type that was exported.
func (p *Program) ImportFact(obj types.Object, ptr any) bool {
	fact, ok := p.facts[factKey{obj: obj, typ: reflect.TypeOf(ptr)}]
	if !ok {
		return false
	}
	reflect.ValueOf(ptr).Elem().Set(reflect.ValueOf(fact).Elem())
	return true
}

// sortByDeps orders packages so program-internal imports come before their
// importers (stable: ties keep the caller's sorted-path order). Import
// cycles cannot occur — the loader rejects them — so the walk terminates.
func sortByDeps(pkgs []*Package, byTypes map[*types.Package]*Package) []*Package {
	ordered := make([]*Package, 0, len(pkgs))
	visited := map[*Package]bool{}
	var visit func(pkg *Package)
	visit = func(pkg *Package) {
		if visited[pkg] {
			return
		}
		visited[pkg] = true
		for _, imp := range pkg.Types.Imports() {
			if dep := byTypes[imp]; dep != nil {
				visit(dep)
			}
		}
		ordered = append(ordered, pkg)
	}
	for _, pkg := range pkgs {
		visit(pkg)
	}
	return ordered
}
