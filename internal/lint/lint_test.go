package lint

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"sync"
	"testing"
)

// sharedLoader caches type-checked packages (and the parsed standard
// library) across all fixture loads in the test binary.
var (
	loaderOnce   sync.Once
	sharedLoader *Loader
	loaderErr    error
)

func fixtureLoader(t *testing.T) *Loader {
	t.Helper()
	loaderOnce.Do(func() {
		sharedLoader, loaderErr = NewLoader(".")
	})
	if loaderErr != nil {
		t.Fatalf("NewLoader: %v", loaderErr)
	}
	return sharedLoader
}

func loadFixture(t *testing.T, name string) *Package {
	t.Helper()
	pkg, err := fixtureLoader(t).LoadDir(filepath.Join("testdata", "src", name))
	if err != nil {
		t.Fatalf("loading fixture %s: %v", name, err)
	}
	return pkg
}

// wantRe extracts golden expectations: a backquoted regex after "want",
// in a comment trailing the offending line.
var wantRe = regexp.MustCompile("want `([^`]+)`")

type want struct {
	line    int
	re      *regexp.Regexp
	matched bool
}

// parseWants scans a fixture directory's sources for want comments, keyed by
// file path.
func parseWants(t *testing.T, pkg *Package) map[string][]*want {
	t.Helper()
	wants := map[string][]*want{}
	for _, f := range pkg.Files {
		path := pkg.Fset.Position(f.Pos()).Filename
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatalf("reading %s: %v", path, err)
		}
		for i, line := range strings.Split(string(data), "\n") {
			m := wantRe.FindStringSubmatch(line)
			if m == nil {
				continue
			}
			re, err := regexp.Compile(m[1])
			if err != nil {
				t.Fatalf("%s:%d: bad want regexp %q: %v", path, i+1, m[1], err)
			}
			wants[path] = append(wants[path], &want{line: i + 1, re: re})
		}
	}
	return wants
}

// checkFixture runs every registered analyzer over the fixture and matches
// the diagnostics against the want comments — exhaustively in both
// directions, so a fixture can neither miss a finding nor trip an analyzer
// it does not mean to.
func checkFixture(t *testing.T, name string) {
	t.Helper()
	pkg := loadFixture(t, name)
	wants := parseWants(t, pkg)
	for _, d := range Run([]*Package{pkg}, Analyzers) {
		found := false
		for _, w := range wants[d.File] {
			if w.line == d.Line && !w.matched && w.re.MatchString(d.Message) {
				w.matched = true
				found = true
				break
			}
		}
		if !found {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	for file, ws := range wants {
		for _, w := range ws {
			if !w.matched {
				t.Errorf("%s:%d: expected diagnostic matching %q, got none", file, w.line, w.re)
			}
		}
	}
}

// TestGolden checks one positive (violations, with want comments) and one
// negative (clean) fixture per analyzer.
func TestGolden(t *testing.T) {
	for _, a := range Analyzers {
		for _, suffix := range []string{"_bad", "_ok"} {
			name := a.Name + suffix
			t.Run(name, func(t *testing.T) { checkFixture(t, name) })
		}
	}
}

// TestGoldenPositivesFire asserts every _bad fixture actually produces at
// least one diagnostic from its own analyzer — so a silently broken analyzer
// cannot pass by matching zero wants against zero findings.
func TestGoldenPositivesFire(t *testing.T) {
	for _, a := range Analyzers {
		pkg := loadFixture(t, a.Name+"_bad")
		diags := Run([]*Package{pkg}, []*Analyzer{a})
		if len(diags) == 0 {
			t.Errorf("analyzer %s reported nothing on its positive fixture", a.Name)
		}
		for _, d := range diags {
			if d.Analyzer != a.Name {
				t.Errorf("analyzer %s reported under wrong name: %s", a.Name, d)
			}
		}
	}
}

// TestSuppression checks the //lint:ignore mechanism: justified directives
// silence exactly the named analyzer, reason-less directives are themselves
// reported and suppress nothing, and naming the wrong analyzer leaves the
// finding visible.
func TestSuppression(t *testing.T) {
	if diags := Run([]*Package{loadFixture(t, "suppress_ok")}, Analyzers); len(diags) != 0 {
		t.Errorf("suppress_ok: want no diagnostics, got %v", diags)
	}

	diags := Run([]*Package{loadFixture(t, "suppress_bad")}, Analyzers)
	var malformed, stale, virtualtime int
	for _, d := range diags {
		switch {
		case d.Analyzer == "lint" && strings.Contains(d.Message, "malformed"):
			malformed++
		case d.Analyzer == "lint" && strings.Contains(d.Message, "stale"):
			stale++
		case d.Analyzer == "virtualtime":
			virtualtime++
		default:
			t.Errorf("suppress_bad: unexpected diagnostic %s", d)
		}
	}
	if malformed != 1 {
		t.Errorf("suppress_bad: want 1 malformed-directive diagnostic, got %d", malformed)
	}
	if stale != 1 {
		t.Errorf("suppress_bad: want 1 stale-directive diagnostic (the wrong-analyzer errdrop ignore suppresses nothing), got %d", stale)
	}
	if virtualtime != 2 {
		t.Errorf("suppress_bad: want 2 virtualtime diagnostics (neither directive suppresses them), got %d", virtualtime)
	}

	// A partial run that does not include the named analyzer must not judge
	// the directive stale: -enable subsets cannot tell whether the directive
	// would have suppressed something.
	for _, d := range Run([]*Package{loadFixture(t, "suppress_bad")}, []*Analyzer{VirtualTime}) {
		if d.Analyzer == "lint" && strings.Contains(d.Message, "stale") {
			t.Errorf("suppress_bad under -enable virtualtime: errdrop directive wrongly judged stale: %s", d)
		}
	}
}

// TestRepoClean lints the whole module: the tree must stay free of
// diagnostics, the same gate CI applies via cmd/robustlint.
func TestRepoClean(t *testing.T) {
	if testing.Short() {
		t.Skip("repo-wide lint skipped in -short mode")
	}
	pkgs, err := fixtureLoader(t).Load("./...")
	if err != nil {
		t.Fatalf("loading module packages: %v", err)
	}
	if diags := Run(pkgs, Analyzers); len(diags) != 0 {
		for _, d := range diags {
			t.Errorf("repo not lint-clean: %s", d)
		}
	}
}

// TestJSONOutput pins the machine-readable output shape.
func TestJSONOutput(t *testing.T) {
	diags := Run([]*Package{loadFixture(t, "errdrop_bad")}, []*Analyzer{ErrDrop})
	if len(diags) == 0 {
		t.Fatal("expected diagnostics from errdrop_bad")
	}
	var buf bytes.Buffer
	if err := WriteJSON(&buf, diags); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	var decoded []map[string]any
	if err := json.Unmarshal(buf.Bytes(), &decoded); err != nil {
		t.Fatalf("output is not valid JSON: %v", err)
	}
	if len(decoded) != len(diags) {
		t.Fatalf("JSON has %d entries, want %d", len(decoded), len(diags))
	}
	for _, key := range []string{"analyzer", "file", "line", "col", "message"} {
		if _, ok := decoded[0][key]; !ok {
			t.Errorf("JSON diagnostic missing %q field: %v", key, decoded[0])
		}
	}
}

// TestByName pins the registry lookup the CLI's -enable/-disable flags use.
func TestByName(t *testing.T) {
	for _, a := range Analyzers {
		if ByName(a.Name) != a {
			t.Errorf("ByName(%q) did not return the registered analyzer", a.Name)
		}
	}
	if ByName("nonexistent") != nil {
		t.Error("ByName of an unknown analyzer should return nil")
	}
}
