package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// CtxFlow enforces the deadline-threading invariant behind the front door's
// overload guarantees: a query's context carries its deadline and the
// client's cancellation from the HTTP handler through admission wait into
// execution, so every function reachable from the serving surface (the
// request path) must keep threading it. Three rules, checked
// interprocedurally over the call graph:
//
//  1. No context.Background()/context.TODO() on the request path — minting a
//     fresh root context there detaches the work from the request's deadline
//     (the exact regression class of a handler passing Background instead of
//     r.Context()). Passing one directly to a *slog.Logger method is exempt:
//     slog documents that argument as optional plumbing the default handler
//     ignores.
//  2. No time.Sleep on the request path — it blocks without honoring
//     cancellation; waits belong in a select with ctx.Done().
//  3. A request-path function that receives a context must not perform a
//     naked blocking channel operation (send or receive outside any select)
//     in its own body: the operation can block forever while the context it
//     was handed is already dead. Pair the operation with ctx.Done() in a
//     select, or push it behind an API that does.
//
// Roots are the serving surface: every exported function or method of the
// server and admission packages, plus unexported functions taking an
// http.ResponseWriter, *http.Request, or context.Context (the handler and
// helper shapes). Drivers that call *into* the front door — cmd, figures,
// tests — are upstream of the roots and stay free to use Background as
// their process root context.
var CtxFlow = &Analyzer{
	Name:       "ctxflow",
	Doc:        "require request-path code to thread the request context (no Background/TODO, Sleep, or naked blocking ops)",
	RunProgram: runCtxFlow,
}

// ctxFlowRootPkg reports whether the package is part of the serving surface
// whose functions seed the request path (by path suffix or package name, so
// golden-test fixtures are covered too).
func ctxFlowRootPkg(pkg *Package) bool {
	for _, name := range []string{"server", "admission"} {
		if strings.HasSuffix(pkg.Path, "/"+name) || pkg.Types.Name() == name {
			return true
		}
	}
	return false
}

func runCtxFlow(p *ProgramPass) {
	g := p.Prog.CallGraph
	// Seed the request path with the serving surface and record, for every
	// reached function, which root first reached it — naming the entry point
	// in the diagnostic turns "somewhere on some path" into an actionable
	// trace head.
	rootOf := map[*types.Func]*types.Func{}
	var queue []*CallNode
	for fn, node := range g.Nodes {
		if ctxFlowRootPkg(node.Pkg) && isServingRoot(node) {
			rootOf[fn] = fn
			queue = append(queue, node)
		}
	}
	// Deterministic provenance: seed the BFS in source order so the same
	// root always claims a shared callee.
	sort.Slice(queue, func(i, j int) bool { return queue[i].Decl.Pos() < queue[j].Decl.Pos() })
	for len(queue) > 0 {
		node := queue[0]
		queue = queue[1:]
		for _, e := range node.Out {
			if _, seen := rootOf[e.Callee.Func]; !seen {
				rootOf[e.Callee.Func] = rootOf[node.Func]
				queue = append(queue, e.Callee)
			}
		}
	}
	for fn, root := range rootOf {
		node := g.Nodes[fn]
		checkRequestPathFunc(p, node, root)
	}
}

// isServingRoot reports whether the function seeds the request path: it is
// exported, or it takes one of the request-shaped parameter types (the
// handler convention for unexported entry points like handleQuery).
func isServingRoot(node *CallNode) bool {
	if node.Func.Exported() {
		return true
	}
	sig, _ := node.Func.Type().(*types.Signature)
	if sig == nil {
		return false
	}
	params := sig.Params()
	for i := 0; i < params.Len(); i++ {
		t := params.At(i).Type()
		if isContextType(t) || isResponseWriter(t) || isHTTPRequestPtr(t) {
			return true
		}
	}
	return false
}

// checkRequestPathFunc applies the three rules to one reached function.
func checkRequestPathFunc(p *ProgramPass, node *CallNode, root *types.Func) {
	info := node.Pkg.Info
	body := node.Decl.Body
	parents := parentMap(body)
	hasCtx := funcHasCtxParam(node.Func)
	pathNote := ""
	if root != node.Func {
		pathNote = " (on the request path from " + root.Name() + ")"
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			fn := calleeFunc(info, n)
			switch {
			case isPkgFunc(fn, "context", "Background") || isPkgFunc(fn, "context", "TODO"):
				if !isSlogArg(info, parents, n) {
					p.Reportf(n.Pos(),
						"context.%s() on the request path detaches %s from the request deadline and cancellation; thread the caller's ctx%s",
						fn.Name(), node.Func.Name(), pathNote)
				}
			case isPkgFunc(fn, "time", "Sleep"):
				p.Reportf(n.Pos(),
					"time.Sleep in %s blocks the request path without honoring ctx cancellation; wait in a select with ctx.Done()%s",
					node.Func.Name(), pathNote)
			}
		case *ast.SendStmt:
			if hasCtx && !insideSelectOrFuncLit(parents, n, body) {
				p.Reportf(n.Pos(),
					"blocking channel send outside select in ctx-aware request-path function %s; pair it with ctx.Done() in a select%s",
					node.Func.Name(), pathNote)
			}
		case *ast.UnaryExpr:
			if n.Op == token.ARROW && hasCtx && !insideSelectOrFuncLit(parents, n, body) {
				p.Reportf(n.Pos(),
					"blocking channel receive outside select in ctx-aware request-path function %s; pair it with ctx.Done() in a select%s",
					node.Func.Name(), pathNote)
			}
		}
		return true
	})
}

// isSlogArg reports whether the expression is passed directly as an argument
// to a *log/slog.Logger method (Enabled, Log, LogAttrs, ...), where a
// Background context is the documented "no context" placeholder.
func isSlogArg(info *types.Info, parents map[ast.Node]ast.Node, e ast.Expr) bool {
	call, ok := parents[e].(*ast.CallExpr)
	if !ok {
		return false
	}
	fn := calleeFunc(info, call)
	if fn == nil {
		return false
	}
	pkgPath, _, ok := receiverOf(fn)
	return ok && pkgPath == "log/slog"
}

// insideSelectOrFuncLit reports whether n sits inside a select statement
// (where a ctx.Done() case can guard it) or a nested function literal (a
// separate goroutine or callback with its own lifecycle, covered by
// leakcheck) under body.
func insideSelectOrFuncLit(parents map[ast.Node]ast.Node, n ast.Node, body *ast.BlockStmt) bool {
	for cur := parents[n]; cur != nil && cur != body; cur = parents[cur] {
		switch cur.(type) {
		case *ast.SelectStmt, *ast.FuncLit:
			return true
		}
	}
	return false
}

// funcHasCtxParam reports whether the function's signature includes a
// context.Context parameter.
func funcHasCtxParam(fn *types.Func) bool {
	sig, _ := fn.Type().(*types.Signature)
	if sig == nil {
		return false
	}
	params := sig.Params()
	for i := 0; i < params.Len(); i++ {
		if isContextType(params.At(i).Type()) {
			return true
		}
	}
	return false
}

// isContextType reports whether t is context.Context.
func isContextType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Context" && obj.Pkg() != nil && obj.Pkg().Path() == "context"
}

// isHTTPRequestPtr reports whether t is *net/http.Request.
func isHTTPRequestPtr(t types.Type) bool {
	ptr, ok := t.(*types.Pointer)
	if !ok {
		return false
	}
	named, ok := ptr.Elem().(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Request" && obj.Pkg() != nil && obj.Pkg().Path() == "net/http"
}
