package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// ErrDrop enforces the surfaced-error invariant of the robustness work: in
// the engine and execution paths an error return is a signal the degradation
// ladder reacts to, so discarding one with `_ =` or a bare call hides a
// failure the way the pre-PR-1 Metrics.CatalogErrors bug did. The walk
// covers every statement position an error can vanish from — expression
// statements, all-blank assignments (inside goroutine closures too),
// `defer f()`, and `go f()`. Errors must be handled, propagated, or counted
// (NoteCatalogError / NotePreloadError); a deliberate drop needs a
// //lint:ignore errdrop with its justification, and `defer x.Close()` is
// exempt as the one conventional cleanup idiom.
var ErrDrop = &Analyzer{
	Name: "errdrop",
	Doc:  "forbid discarded error returns (`_ =`, bare, deferred, and go-spawned calls) in engine paths",
	Run:  runErrDrop,
}

// errDropExemptPkg reports whether the package is a presentation layer the
// invariant does not cover: commands and figure/diagnostic renderers print
// for humans, and the engine never consumes their output. Engine and
// execution paths (everything else, including golden-test fixture packages)
// are enforced.
func errDropExemptPkg(path string) bool {
	return strings.Contains(path, "/cmd/") ||
		strings.HasSuffix(path, "/figures") ||
		strings.HasSuffix(path, "/lint")
}

func runErrDrop(p *Pass) {
	if errDropExemptPkg(p.Pkg.Path) {
		return
	}
	info := p.Pkg.Info
	p.walkFiles(func(f *ast.File) {
		ast.Inspect(f, func(n ast.Node) bool {
			switch s := n.(type) {
			case *ast.ExprStmt:
				call, ok := ast.Unparen(s.X).(*ast.CallExpr)
				if !ok || !resultsError(info, call) || errDropExempt(info, call) {
					return true
				}
				p.Reportf(s.Pos(), "error return of %s is silently discarded; handle, propagate, or count it", calleeName(info, call))
			case *ast.DeferStmt:
				// A deferred call is not an ExprStmt, so it used to slip past
				// the walk — yet its error is just as lost. `defer x.Close()`
				// (a no-argument Close method) is the one conventional
				// exception: deferred cleanup of a resource whose close
				// failure has no remediation.
				if resultsError(info, s.Call) && !errDropExempt(info, s.Call) && !isDeferredClose(info, s.Call) {
					p.Reportf(s.Pos(), "error return of deferred %s call is silently discarded; wrap it in a closure that handles or counts it", calleeName(info, s.Call))
				}
			case *ast.GoStmt:
				// Same blind spot for go statements: an error returned by the
				// goroutine's entry call has no receiver at all.
				if resultsError(info, s.Call) && !errDropExempt(info, s.Call) {
					p.Reportf(s.Pos(), "error return of %s is unobservable from a go statement; run it in a closure that handles or counts the error", calleeName(info, s.Call))
				}
			case *ast.AssignStmt:
				if !allBlank(s.Lhs) {
					return true
				}
				for _, rhs := range s.Rhs {
					if discardsError(info, rhs) {
						p.Reportf(s.Pos(), "error assigned to _; handle, propagate, or count it")
						break
					}
				}
			}
			return true
		})
	})
}

// errDropExempt lists callees whose error results are conventionally
// ignorable: terminal output via fmt.Print*, and the never-failing Write
// methods of strings.Builder and bytes.Buffer.
func errDropExempt(info *types.Info, call *ast.CallExpr) bool {
	fn := calleeFunc(info, call)
	if fn == nil {
		return false
	}
	if isPkgFunc(fn, "fmt", "Print") || isPkgFunc(fn, "fmt", "Printf") || isPkgFunc(fn, "fmt", "Println") {
		return true
	}
	for _, recv := range [][2]string{{"strings", "Builder"}, {"bytes", "Buffer"}} {
		if pkg, typ, ok := receiverOf(fn); ok && pkg == recv[0] && typ == recv[1] {
			return true
		}
	}
	return false
}

// isDeferredClose reports whether call is a no-argument Close() method call
// — the io.Closer cleanup idiom whose deferred error drop is conventional
// (`defer resp.Body.Close()`).
func isDeferredClose(info *types.Info, call *ast.CallExpr) bool {
	fn := calleeFunc(info, call)
	if fn == nil || fn.Name() != "Close" || len(call.Args) != 0 {
		return false
	}
	sig, _ := fn.Type().(*types.Signature)
	return sig != nil && sig.Recv() != nil
}

func calleeName(info *types.Info, call *ast.CallExpr) string {
	if fn := calleeFunc(info, call); fn != nil {
		return fn.Name()
	}
	return "call"
}

func allBlank(exprs []ast.Expr) bool {
	for _, e := range exprs {
		id, ok := e.(*ast.Ident)
		if !ok || id.Name != "_" {
			return false
		}
	}
	return len(exprs) > 0
}

// discardsError reports whether assigning e to blanks loses an error: either
// e itself is an error value, or it is a call whose result tuple ends in one.
func discardsError(info *types.Info, e ast.Expr) bool {
	if call, ok := ast.Unparen(e).(*ast.CallExpr); ok {
		return resultsError(info, call) && !errDropExempt(info, call)
	}
	tv, ok := info.Types[e]
	return ok && tv.Type != nil && isErrorType(tv.Type)
}
