package lint

import (
	"go/ast"
	"go/types"
)

// LockCopy forbids copying mutex-bearing values. A copied sync.Mutex forks
// the lock state: both copies believe they hold (or don't hold) the lock,
// which in the chopping thread pool turns into two workers inside one
// critical section. Flagged: value receivers on mutex-bearing types, value
// parameters, and assignments that duplicate an existing mutex-bearing
// value. Constructing a fresh value (composite literal, function call) is
// legal — there is no lock state to fork yet.
var LockCopy = &Analyzer{
	Name: "lockcopy",
	Doc:  "forbid copying values that contain a sync.Mutex or sync.RWMutex",
	Run:  runLockCopy,
}

// syncNoCopyTypes are the sync types whose values must never be duplicated
// after first use.
var syncNoCopyTypes = map[string]bool{
	"Mutex": true, "RWMutex": true, "WaitGroup": true, "Once": true,
}

// containsLock reports whether t holds one of the sync no-copy types by
// value (directly, through struct fields, or through arrays). Pointers,
// slices, maps, and channels share state instead of copying it and stop the
// recursion.
func containsLock(t types.Type) bool {
	switch t := t.(type) {
	case *types.Named:
		if obj := t.Obj(); obj.Pkg() != nil && obj.Pkg().Path() == "sync" && syncNoCopyTypes[obj.Name()] {
			return true
		}
		return containsLock(t.Underlying())
	case *types.Struct:
		for i := 0; i < t.NumFields(); i++ {
			if containsLock(t.Field(i).Type()) {
				return true
			}
		}
	case *types.Array:
		return containsLock(t.Elem())
	}
	return false
}

func runLockCopy(p *Pass) {
	info := p.Pkg.Info
	p.walkFiles(func(f *ast.File) {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				if n.Recv != nil {
					checkLockField(p, info, n.Recv.List, "receiver")
				}
				checkLockField(p, info, n.Type.Params.List, "parameter")
			case *ast.FuncLit:
				checkLockField(p, info, n.Type.Params.List, "parameter")
			case *ast.AssignStmt:
				for i, rhs := range n.Rhs {
					if i >= len(n.Lhs) {
						break
					}
					if id, ok := n.Lhs[i].(*ast.Ident); ok && id.Name == "_" {
						continue
					}
					if !copiesExistingValue(rhs) {
						continue
					}
					if tv, ok := info.Types[rhs]; ok && tv.Type != nil && containsLock(tv.Type) {
						p.Reportf(n.Pos(), "assignment copies a mutex-bearing value of type %s; share it through a pointer", tv.Type)
					}
				}
			}
			return true
		})
	})
}

// checkLockField reports receivers or parameters that take a mutex-bearing
// type by value.
func checkLockField(p *Pass, info *types.Info, fields []*ast.Field, kind string) {
	for _, field := range fields {
		tv, ok := info.Types[field.Type]
		if !ok || tv.Type == nil {
			continue
		}
		if _, isPtr := tv.Type.(*types.Pointer); isPtr {
			continue
		}
		if containsLock(tv.Type) {
			p.Reportf(field.Pos(), "%s passes mutex-bearing type %s by value; every call copies the lock state — use a pointer", kind, tv.Type)
		}
	}
}

// copiesExistingValue reports whether evaluating e duplicates an existing
// value (as opposed to constructing a new one).
func copiesExistingValue(e ast.Expr) bool {
	switch ast.Unparen(e).(type) {
	case *ast.Ident, *ast.SelectorExpr, *ast.StarExpr, *ast.IndexExpr:
		return true
	}
	return false
}
