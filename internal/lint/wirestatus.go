package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// WireStatus enforces the front door's error contract: a serving-layer
// handler — any function in a server package that takes an
// http.ResponseWriter — must never swallow a query error. Every `err != nil`
// branch that terminates the handler has to either write to the
// ResponseWriter (mapping the failure to a wire status, typically via
// writeError) or propagate the error to a caller that will. A branch that
// just `return`s leaves the client hanging with no status, which is exactly
// the silent drop the overload tests forbid: every shed, timed-out, or
// failed query must surface as a typed wire response.
var WireStatus = &Analyzer{
	Name: "wirestatus",
	Doc:  "forbid server handlers dropping a query error without mapping it to a wire status",
	Run:  runWireStatus,
}

// wireStatusScoped reports whether the package is part of the serving layer
// the invariant covers, by import path or package name (mirrors the
// virtualtime serving-layer exemption, which is scoped the same way).
func wireStatusScoped(p *Pass) bool {
	return strings.HasSuffix(p.Pkg.Path, "/server") || p.Pkg.Types.Name() == "server"
}

func runWireStatus(p *Pass) {
	if !wireStatusScoped(p) {
		return
	}
	info := p.Pkg.Info
	p.walkFiles(func(f *ast.File) {
		funcBodies(f, func(name string, ftype *ast.FuncType, body *ast.BlockStmt) {
			writers := responseWriterParams(info, ftype)
			if len(writers) == 0 {
				return
			}
			ast.Inspect(body, func(n ast.Node) bool {
				ifStmt, ok := n.(*ast.IfStmt)
				if !ok || !isErrNilCheck(info, ifStmt.Cond) {
					return true
				}
				if !terminatesBare(ifStmt.Body) {
					return true // branch falls through; the error is still live
				}
				if usesAny(info, ifStmt.Body, writers) || returnsError(info, ifStmt.Body) || panics(info, ifStmt.Body) {
					return true
				}
				p.Reportf(ifStmt.Pos(), "handler %s drops a query error without mapping it to a wire status; write to the ResponseWriter or return the error", name)
				return true
			})
		})
	})
}

// responseWriterParams collects the function's parameters whose type is
// net/http.ResponseWriter.
func responseWriterParams(info *types.Info, ftype *ast.FuncType) []*types.Var {
	var out []*types.Var
	if ftype.Params == nil {
		return nil
	}
	for _, field := range ftype.Params.List {
		for _, name := range field.Names {
			v, ok := info.Defs[name].(*types.Var)
			if ok && isResponseWriter(v.Type()) {
				out = append(out, v)
			}
		}
	}
	return out
}

func isResponseWriter(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "ResponseWriter" && obj.Pkg() != nil && obj.Pkg().Path() == "net/http"
}

// isErrNilCheck matches the `err != nil` guard: a != comparison between an
// error-typed expression and nil.
func isErrNilCheck(info *types.Info, cond ast.Expr) bool {
	bin, ok := ast.Unparen(cond).(*ast.BinaryExpr)
	if !ok || bin.Op.String() != "!=" {
		return false
	}
	x, y := bin.X, bin.Y
	if isNilExpr(info, x) {
		x, y = y, x
	}
	if !isNilExpr(info, y) {
		return false
	}
	tv, ok := info.Types[x]
	return ok && tv.Type != nil && isErrorType(tv.Type)
}

func isNilExpr(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[e]
	return ok && tv.IsNil()
}

// terminatesBare reports whether the block's control flow ends the handler:
// its last statement is a return (of any shape).
func terminatesBare(body *ast.BlockStmt) bool {
	if len(body.List) == 0 {
		return false
	}
	_, ok := body.List[len(body.List)-1].(*ast.ReturnStmt)
	return ok
}

// usesAny reports whether the block references any of the given objects
// (passing the ResponseWriter to writeError counts, as does a direct write).
func usesAny(info *types.Info, body *ast.BlockStmt, objs []*types.Var) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		use := info.Uses[id]
		for _, obj := range objs {
			if use == obj {
				found = true
				return false
			}
		}
		return true
	})
	return found
}

// returnsError reports whether some return statement in the block propagates
// an error value to the caller.
func returnsError(info *types.Info, body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		ret, ok := n.(*ast.ReturnStmt)
		if !ok {
			return true
		}
		for _, res := range ret.Results {
			tv, ok := info.Types[res]
			if ok && tv.Type != nil && !tv.IsNil() && isErrorType(tv.Type) {
				found = true
				return false
			}
		}
		return true
	})
	return found
}

// panics reports whether the block calls the builtin panic — crashing is a
// (loud) alternative to a wire status, not a silent drop.
func panics(info *types.Info, body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && id.Name == "panic" {
			if _, isBuiltin := info.Uses[id].(*types.Builtin); isBuiltin {
				found = true
				return false
			}
		}
		return true
	})
	return found
}
