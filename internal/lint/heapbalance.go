package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// devicePkg is the package whose allocator the heap-balance invariant
// protects. The package itself is exempt: its accounting internals implement
// the abstraction the rule enforces on everyone else.
const devicePkg = "robustdb/internal/device"

// HeapBalance enforces the device-heap balance invariant behind the paper's
// "exact results or clean failure" guarantee: every heap reservation must be
// released on every control-flow path — including error returns, the path PR
// 1's leak hid on. Two rules:
//
//  1. A local variable holding a device.Memory Reserve() result must reach
//     Release() on every path out of the function (a flow-sensitive walk
//     over if/for/switch/select, honoring `defer res.Release()`). Passing
//     the reservation onward — as an argument, a return value, into a
//     closure — transfers ownership and ends local tracking.
//  2. Raw Memory.Alloc calls must be balanced by a Memory.Release in the
//     same function, and a Reserve() result must not be discarded.
var HeapBalance = &Analyzer{
	Name: "heapbalance",
	Doc:  "require every device-heap Alloc/Reserve to reach a Release on all paths",
	Run:  runHeapBalance,
}

func runHeapBalance(p *Pass) {
	if p.Pkg.Path == devicePkg {
		return
	}
	info := p.Pkg.Info
	p.walkFiles(func(f *ast.File) {
		funcBodies(f, func(name string, _ *ast.FuncType, body *ast.BlockStmt) {
			checkAllocBalance(p, body)
			parents := parentMap(body)
			for _, def := range reservationDefs(info, body, parents) {
				if escapes(info, body, parents, def.obj) {
					continue // ownership moved; the receiver releases it
				}
				t := &hbTracker{pass: p, info: info, obj: def.obj, fn: name}
				t.deferred = hasDeferredRelease(info, body, def.obj)
				final := t.stmts(body.List, hbState{})
				if final.defined && !final.released && !final.terminated && !t.deferred {
					p.Reportf(def.pos, "device reservation %q leaks: control can leave %s without releasing it", def.obj.Name(), name)
				}
			}
		})
	})
}

// checkAllocBalance applies rule 2: a function performing raw Memory.Alloc
// calls must contain a Memory.Release, and Reserve() results must be bound.
func checkAllocBalance(p *Pass, body *ast.BlockStmt) {
	info := p.Pkg.Info
	var allocs []*ast.CallExpr
	released := false
	ast.Inspect(body, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.CallExpr:
			fn := calleeFunc(info, s)
			if isMethod(fn, devicePkg, "Memory", "Alloc") {
				allocs = append(allocs, s)
			}
			if isMethod(fn, devicePkg, "Memory", "Release") {
				released = true
			}
		case *ast.ExprStmt:
			if call, ok := ast.Unparen(s.X).(*ast.CallExpr); ok {
				if isMethod(calleeFunc(info, call), devicePkg, "Memory", "Reserve") {
					p.Reportf(s.Pos(), "Reserve() result discarded: the reservation can never be released")
				}
			}
		}
		return true
	})
	if !released {
		for _, call := range allocs {
			p.Reportf(call.Pos(), "Memory.Alloc without a matching Memory.Release in this function; device bytes leak on early return")
		}
	}
}

// resDef is one `res := mem.Reserve()` definition.
type resDef struct {
	obj types.Object
	pos token.Pos
}

// reservationDefs finds short-variable definitions bound to a Reserve()
// call, skipping definitions inside nested function literals (those are
// visited as their own bodies).
func reservationDefs(info *types.Info, body *ast.BlockStmt, parents map[ast.Node]ast.Node) []resDef {
	var defs []resDef
	ast.Inspect(body, func(n ast.Node) bool {
		assign, ok := n.(*ast.AssignStmt)
		if !ok || assign.Tok != token.DEFINE || len(assign.Lhs) != 1 || len(assign.Rhs) != 1 {
			return true
		}
		call, ok := ast.Unparen(assign.Rhs[0]).(*ast.CallExpr)
		if !ok || !isMethod(calleeFunc(info, call), devicePkg, "Memory", "Reserve") {
			return true
		}
		id, ok := assign.Lhs[0].(*ast.Ident)
		if !ok || id.Name == "_" {
			return true
		}
		if obj := info.Defs[id]; obj != nil && !insideFuncLit(parents, assign, body) {
			defs = append(defs, resDef{obj: obj, pos: assign.Pos()})
		}
		return true
	})
	return defs
}

// escapes reports whether the reservation is used as anything other than a
// direct method-call receiver: passed to a call, returned, assigned,
// captured by a function literal. Any such use transfers ownership to code
// this function-local analysis cannot see, so tracking stops.
func escapes(info *types.Info, body *ast.BlockStmt, parents map[ast.Node]ast.Node, obj types.Object) bool {
	escaped := false
	ast.Inspect(body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok || info.Uses[id] != obj || escaped {
			return true
		}
		if insideFuncLit(parents, id, body) {
			escaped = true // captured by a closure with its own lifetime
			return true
		}
		sel, ok := parents[id].(*ast.SelectorExpr)
		if !ok || sel.X != id {
			escaped = true
			return true
		}
		call, ok := parents[sel].(*ast.CallExpr)
		if !ok || call.Fun != sel {
			escaped = true // method value or field-like use
		}
		return true
	})
	return escaped
}

// insideFuncLit reports whether n sits inside a function literal nested in
// body.
func insideFuncLit(parents map[ast.Node]ast.Node, n ast.Node, body *ast.BlockStmt) bool {
	for cur := parents[n]; cur != nil && cur != body; cur = parents[cur] {
		if _, ok := cur.(*ast.FuncLit); ok {
			return true
		}
	}
	return false
}

// hasDeferredRelease reports whether the body contains `defer res.Release()`
// for the tracked reservation, which covers every exit path at once.
func hasDeferredRelease(info *types.Info, body *ast.BlockStmt, obj types.Object) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		d, ok := n.(*ast.DeferStmt)
		if ok && isReleaseOn(info, d.Call, obj) {
			found = true
		}
		return !found
	})
	return found
}

// isReleaseOn reports whether call is `obj.Release()`.
func isReleaseOn(info *types.Info, call *ast.CallExpr, obj types.Object) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok || info.Uses[id] != obj {
		return false
	}
	return isMethod(calleeFunc(info, call), devicePkg, "Reservation", "Release")
}

// hbState is the abstract state of one reservation at one program point.
type hbState struct {
	defined    bool // the reservation variable exists
	released   bool // Release() was reached on this path
	terminated bool // the path cannot fall through (return/panic/branch)
}

// hbTracker walks a function body for one reservation variable, reporting
// every exit path that can leave the reservation held. The walk is
// structural and deliberately conservative: loops are assumed to run zero
// times and branch merges require release on *all* fall-through arms, so a
// false "leak" is possible in convoluted shapes (suppress with
// //lint:ignore heapbalance and a reason) but a silent leak on a straight
// error path is not.
type hbTracker struct {
	pass     *Pass
	info     *types.Info
	obj      types.Object
	fn       string
	deferred bool
}

func (t *hbTracker) stmts(list []ast.Stmt, st hbState) hbState {
	for _, s := range list {
		if st.terminated {
			break // unreachable tail
		}
		st = t.stmt(s, st)
	}
	return st
}

func (t *hbTracker) stmt(s ast.Stmt, st hbState) hbState {
	switch s := s.(type) {
	case *ast.AssignStmt:
		if s.Tok == token.DEFINE {
			for _, lhs := range s.Lhs {
				if id, ok := lhs.(*ast.Ident); ok && t.info.Defs[id] == t.obj {
					return hbState{defined: true}
				}
			}
		}
		return st
	case *ast.ExprStmt:
		if call, ok := ast.Unparen(s.X).(*ast.CallExpr); ok {
			if st.defined && isReleaseOn(t.info, call, t.obj) {
				st.released = true
			}
			if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && id.Name == "panic" {
				if _, isBuiltin := t.info.Uses[id].(*types.Builtin); isBuiltin {
					st.terminated = true // builtin panic unwinds the path
				}
			}
		}
		return st
	case *ast.ReturnStmt:
		if st.defined && !st.released && !t.deferred {
			t.pass.Reportf(s.Pos(), "device reservation %q leaks: this return path in %s does not release it", t.obj.Name(), t.fn)
		}
		st.terminated = true
		return st
	case *ast.BranchStmt:
		st.terminated = true // leaves this statement list; merges stay conservative
		return st
	case *ast.BlockStmt:
		return t.stmts(s.List, st)
	case *ast.LabeledStmt:
		return t.stmt(s.Stmt, st)
	case *ast.IfStmt:
		thenSt := t.stmts(s.Body.List, st)
		elseSt := st
		if s.Else != nil {
			elseSt = t.stmt(s.Else, st)
		}
		return mergeStates(thenSt, elseSt)
	case *ast.ForStmt:
		t.stmts(s.Body.List, st) // report exits inside; assume zero iterations after
		return st
	case *ast.RangeStmt:
		t.stmts(s.Body.List, st)
		return st
	case *ast.SwitchStmt:
		return t.clauses(s.Body, st, true)
	case *ast.TypeSwitchStmt:
		return t.clauses(s.Body, st, true)
	case *ast.SelectStmt:
		return t.clauses(s.Body, st, false)
	default:
		return st
	}
}

// clauses merges the case bodies of a switch or select. Without a default
// clause a switch can fall through unchanged, so the entry state joins the
// merge; a select always executes some clause.
func (t *hbTracker) clauses(body *ast.BlockStmt, st hbState, implicitDefault bool) hbState {
	var outs []hbState
	hasDefault := false
	for _, c := range body.List {
		var stmts []ast.Stmt
		switch c := c.(type) {
		case *ast.CaseClause:
			stmts = c.Body
			hasDefault = hasDefault || c.List == nil
		case *ast.CommClause:
			stmts = c.Body
			hasDefault = hasDefault || c.Comm == nil
		}
		outs = append(outs, t.stmts(stmts, st))
	}
	if implicitDefault && !hasDefault {
		outs = append(outs, st)
	}
	if len(outs) == 0 {
		return st
	}
	merged := outs[0]
	for _, o := range outs[1:] {
		merged = mergeStates(merged, o)
	}
	return merged
}

// mergeStates joins two branch outcomes: the merged path is released only if
// every arm that can fall through released, and terminated only if no arm
// falls through.
func mergeStates(a, b hbState) hbState {
	switch {
	case a.terminated && b.terminated:
		return hbState{defined: a.defined || b.defined, terminated: true}
	case a.terminated:
		return b
	case b.terminated:
		return a
	default:
		return hbState{
			defined:  a.defined || b.defined,
			released: a.released && b.released,
		}
	}
}

// parentMap records the parent of every node under root.
func parentMap(root ast.Node) map[ast.Node]ast.Node {
	m := map[ast.Node]ast.Node{}
	var stack []ast.Node
	ast.Inspect(root, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		if len(stack) > 0 {
			m[n] = stack[len(stack)-1]
		}
		stack = append(stack, n)
		return true
	})
	return m
}
