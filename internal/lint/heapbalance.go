package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// devicePkg is the package whose allocator the heap-balance invariant
// protects. The package itself is exempt: its accounting internals implement
// the abstraction the rule enforces on everyone else.
const devicePkg = "robustdb/internal/device"

// HeapBalance enforces the device-heap balance invariant behind the paper's
// "exact results or clean failure" guarantee: every heap reservation must be
// released on every control-flow path — including error returns, the path PR
// 1's leak hid on. Two rules:
//
//  1. A local variable holding a device.Memory Reserve() result must reach
//     Release() on every path out of the function (a flow-sensitive walk
//     over if/for/switch/select, honoring `defer res.Release()`). Passing
//     the reservation onward — as an argument, a return value, into a
//     closure — transfers ownership and ends local tracking.
//  2. Raw Memory.Alloc calls must be balanced by a Memory.Release in the
//     same function, and a Reserve() result must not be discarded.
//
// The analysis is interprocedural through the facts mechanism: a
// dependency-ordered facts pass summarizes every function that (a) releases
// a *device.Reservation parameter on all paths (a releasing helper) or (b)
// returns a fresh reservation the caller owns (a reserving constructor).
// With those summaries, `res := newRes(m)` is tracked exactly like a direct
// Reserve() call, `releaseVia(res)` counts as the release, and
// `defer cleanup(res)` covers every exit path — reservations that escape
// through helpers or are released in a callee, invisible to the per-function
// pass, stay under analysis across function and package boundaries.
var HeapBalance = &Analyzer{
	Name:  "heapbalance",
	Doc:   "require every device-heap Alloc/Reserve to reach a Release on all paths (through helpers too)",
	Run:   runHeapBalance,
	Facts: heapBalanceFacts,
}

// releasesParamsFact marks a function that releases its reservation
// parameter(s) on every control-flow path: calling it transfers ownership
// and counts as the release at the call site.
type releasesParamsFact struct {
	// Params are the indices of the released *device.Reservation parameters.
	Params []int
}

// returnsReservationFact marks a function whose (single) result is a fresh
// *device.Reservation the caller owns — a reserving constructor. Binding its
// result starts leak tracking exactly like a direct Reserve() call.
type returnsReservationFact struct{}

// heapBalanceFacts summarizes one package's releasing helpers and reserving
// constructors. It iterates to a fixpoint within the package so helper
// chains (cleanup → releaseVia → Release) summarize in any declaration
// order; dependencies were summarized earlier by the dependency-ordered
// facts schedule.
func heapBalanceFacts(p *Pass) {
	if p.Pkg.Path == devicePkg {
		return
	}
	for changed := true; changed; {
		changed = false
		p.walkFiles(func(f *ast.File) {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				fn, ok := p.Pkg.Info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				if exportReleasesFact(p, fd, fn) {
					changed = true
				}
				if exportReturnsFact(p, fd, fn) {
					changed = true
				}
			}
		})
	}
}

// exportReleasesFact checks whether the function releases every one of its
// reservation parameters on all paths and, if so, exports the fact.
// Returns true when a new fact was recorded.
func exportReleasesFact(p *Pass, fd *ast.FuncDecl, fn *types.Func) bool {
	var existing releasesParamsFact
	if p.Prog.ImportFact(fn, &existing) {
		return false // already summarized
	}
	info := p.Pkg.Info
	var released []int
	idx := 0
	if fd.Type.Params == nil {
		return false
	}
	parents := parentMap(fd.Body)
	for _, field := range fd.Type.Params.List {
		for _, name := range field.Names {
			obj := info.Defs[name]
			if obj == nil || !isReservationPtr(obj.Type()) {
				idx++
				continue
			}
			if releasesOnAllPaths(p, fd.Body, parents, obj) {
				released = append(released, idx)
			}
			idx++
		}
		if len(field.Names) == 0 {
			idx++
		}
	}
	if len(released) == 0 {
		return false
	}
	p.Prog.ExportFact(fn, &releasesParamsFact{Params: released})
	return true
}

// releasesOnAllPaths reports whether the reservation held by obj is released
// on every path out of body — directly, through a deferred release, or via
// an already-summarized releasing helper — without escaping anywhere the
// analysis cannot see.
func releasesOnAllPaths(p *Pass, body *ast.BlockStmt, parents map[ast.Node]ast.Node, obj types.Object) bool {
	if escapes(p, body, parents, obj) {
		return false
	}
	t := &hbTracker{pass: p, info: p.Pkg.Info, obj: obj, silent: true}
	t.deferred = hasDeferredRelease(p, body, obj)
	final := t.stmts(body.List, hbState{defined: true})
	if t.leaks > 0 {
		return false
	}
	return t.deferred || final.released || final.terminated
}

// exportReturnsFact checks whether the function is a reserving constructor:
// a single *device.Reservation result where every return hands back a fresh
// reservation (a direct Reserve() call, a chained constructor, or a local
// bound to either). Returns true when a new fact was recorded.
func exportReturnsFact(p *Pass, fd *ast.FuncDecl, fn *types.Func) bool {
	var existing returnsReservationFact
	if p.Prog.ImportFact(fn, &existing) {
		return false
	}
	sig, _ := fn.Type().(*types.Signature)
	if sig == nil || sig.Results().Len() != 1 || !isReservationPtr(sig.Results().At(0).Type()) {
		return false
	}
	info := p.Pkg.Info
	// Locals bound to fresh reservations within this body.
	fresh := map[types.Object]bool{}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		assign, ok := n.(*ast.AssignStmt)
		if !ok || assign.Tok != token.DEFINE || len(assign.Lhs) != 1 || len(assign.Rhs) != 1 {
			return true
		}
		if !isFreshReservationExpr(p, assign.Rhs[0], nil) {
			return true
		}
		if id, ok := assign.Lhs[0].(*ast.Ident); ok {
			if obj := info.Defs[id]; obj != nil {
				fresh[obj] = true
			}
		}
		return true
	})
	ok := true
	returns := 0
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if _, isLit := n.(*ast.FuncLit); isLit {
			return false
		}
		ret, isRet := n.(*ast.ReturnStmt)
		if !isRet || len(ret.Results) != 1 {
			return true
		}
		returns++
		if !isFreshReservationExpr(p, ret.Results[0], fresh) {
			ok = false
		}
		return true
	})
	if !ok || returns == 0 {
		return false
	}
	p.Prog.ExportFact(fn, &returnsReservationFact{})
	return true
}

// isFreshReservationExpr reports whether e evaluates to a fresh reservation:
// a direct Memory.Reserve() call, a call to a summarized reserving
// constructor, or (when locals is non-nil) a local known to hold one.
func isFreshReservationExpr(p *Pass, e ast.Expr, locals map[types.Object]bool) bool {
	e = ast.Unparen(e)
	if id, ok := e.(*ast.Ident); ok && locals != nil {
		return locals[p.Pkg.Info.Uses[id]]
	}
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return false
	}
	fn := calleeFunc(p.Pkg.Info, call)
	if isMethod(fn, devicePkg, "Memory", "Reserve") {
		return true
	}
	var fact returnsReservationFact
	return fn != nil && p.Prog.ImportFact(fn, &fact)
}

// isReservationPtr reports whether t is *device.Reservation.
func isReservationPtr(t types.Type) bool {
	ptr, ok := t.(*types.Pointer)
	if !ok {
		return false
	}
	named, ok := ptr.Elem().(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Reservation" && obj.Pkg() != nil && obj.Pkg().Path() == devicePkg
}

// releasingParamIndices returns the summarized released-parameter indices of
// the call's callee (nil when the callee has no releasing fact).
func releasingParamIndices(p *Pass, call *ast.CallExpr) []int {
	fn := calleeFunc(p.Pkg.Info, call)
	if fn == nil {
		return nil
	}
	var fact releasesParamsFact
	if !p.Prog.ImportFact(fn, &fact) {
		return nil
	}
	return fact.Params
}

// isReleasingCallOn reports whether call is `helper(..., obj, ...)` where
// the summarized helper releases the parameter obj is passed as.
func isReleasingCallOn(p *Pass, call *ast.CallExpr, obj types.Object) bool {
	indices := releasingParamIndices(p, call)
	if indices == nil {
		return false
	}
	for _, i := range indices {
		if i < len(call.Args) {
			if id, ok := ast.Unparen(call.Args[i]).(*ast.Ident); ok && p.Pkg.Info.Uses[id] == obj {
				return true
			}
		}
	}
	return false
}

func runHeapBalance(p *Pass) {
	if p.Pkg.Path == devicePkg {
		return
	}
	info := p.Pkg.Info
	p.walkFiles(func(f *ast.File) {
		funcBodies(f, func(name string, _ *ast.FuncType, body *ast.BlockStmt) {
			checkAllocBalance(p, body)
			parents := parentMap(body)
			for _, def := range reservationDefs(p, body, parents) {
				if escapes(p, body, parents, def.obj) {
					continue // ownership moved; the receiver releases it
				}
				t := &hbTracker{pass: p, info: info, obj: def.obj, fn: name}
				t.deferred = hasDeferredRelease(p, body, def.obj)
				final := t.stmts(body.List, hbState{})
				if final.defined && !final.released && !final.terminated && !t.deferred {
					p.Reportf(def.pos, "device reservation %q leaks: control can leave %s without releasing it", def.obj.Name(), name)
				}
			}
		})
	})
}

// checkAllocBalance applies rule 2: a function performing raw Memory.Alloc
// calls must contain a Memory.Release, and Reserve() results must be bound.
func checkAllocBalance(p *Pass, body *ast.BlockStmt) {
	info := p.Pkg.Info
	var allocs []*ast.CallExpr
	released := false
	ast.Inspect(body, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.CallExpr:
			fn := calleeFunc(info, s)
			if isMethod(fn, devicePkg, "Memory", "Alloc") {
				allocs = append(allocs, s)
			}
			if isMethod(fn, devicePkg, "Memory", "Release") {
				released = true
			}
		case *ast.ExprStmt:
			if call, ok := ast.Unparen(s.X).(*ast.CallExpr); ok {
				if isMethod(calleeFunc(info, call), devicePkg, "Memory", "Reserve") {
					p.Reportf(s.Pos(), "Reserve() result discarded: the reservation can never be released")
				}
			}
		}
		return true
	})
	if !released {
		for _, call := range allocs {
			p.Reportf(call.Pos(), "Memory.Alloc without a matching Memory.Release in this function; device bytes leak on early return")
		}
	}
}

// resDef is one `res := mem.Reserve()` (or reserving-constructor)
// definition.
type resDef struct {
	obj types.Object
	pos token.Pos
}

// reservationDefs finds short-variable definitions bound to a Reserve() call
// or a summarized reserving constructor, skipping definitions inside nested
// function literals (those are visited as their own bodies).
func reservationDefs(p *Pass, body *ast.BlockStmt, parents map[ast.Node]ast.Node) []resDef {
	info := p.Pkg.Info
	var defs []resDef
	ast.Inspect(body, func(n ast.Node) bool {
		assign, ok := n.(*ast.AssignStmt)
		if !ok || assign.Tok != token.DEFINE || len(assign.Lhs) != 1 || len(assign.Rhs) != 1 {
			return true
		}
		if !isFreshReservationExpr(p, assign.Rhs[0], nil) {
			return true
		}
		id, ok := assign.Lhs[0].(*ast.Ident)
		if !ok || id.Name == "_" {
			return true
		}
		if obj := info.Defs[id]; obj != nil && !insideFuncLit(parents, assign, body) {
			defs = append(defs, resDef{obj: obj, pos: assign.Pos()})
		}
		return true
	})
	return defs
}

// escapes reports whether the reservation is used as anything other than a
// direct method-call receiver or an argument to a summarized releasing
// helper: passed to an unknown call, returned, assigned, captured by a
// function literal. Any such use transfers ownership to code this analysis
// cannot see, so tracking stops.
func escapes(p *Pass, body *ast.BlockStmt, parents map[ast.Node]ast.Node, obj types.Object) bool {
	info := p.Pkg.Info
	escaped := false
	ast.Inspect(body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok || info.Uses[id] != obj || escaped {
			return true
		}
		if insideFuncLit(parents, id, body) {
			escaped = true // captured by a closure with its own lifetime
			return true
		}
		if call, ok := parents[id].(*ast.CallExpr); ok && call.Fun != id {
			// Passed as an argument: fine when the callee is summarized as
			// releasing exactly this parameter — ownership transfer the
			// tracker accounts for — an escape otherwise.
			if isReleasingCallOn(p, call, obj) {
				return true
			}
			escaped = true
			return true
		}
		sel, ok := parents[id].(*ast.SelectorExpr)
		if !ok || sel.X != id {
			escaped = true
			return true
		}
		call, ok := parents[sel].(*ast.CallExpr)
		if !ok || call.Fun != sel {
			escaped = true // method value or field-like use
		}
		return true
	})
	return escaped
}

// insideFuncLit reports whether n sits inside a function literal nested in
// body.
func insideFuncLit(parents map[ast.Node]ast.Node, n ast.Node, body *ast.BlockStmt) bool {
	for cur := parents[n]; cur != nil && cur != body; cur = parents[cur] {
		if _, ok := cur.(*ast.FuncLit); ok {
			return true
		}
	}
	return false
}

// hasDeferredRelease reports whether the body contains `defer res.Release()`
// or `defer helper(res)` with a summarized releasing helper — either covers
// every exit path at once.
func hasDeferredRelease(p *Pass, body *ast.BlockStmt, obj types.Object) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		d, ok := n.(*ast.DeferStmt)
		if ok && (isReleaseOn(p.Pkg.Info, d.Call, obj) || isReleasingCallOn(p, d.Call, obj)) {
			found = true
		}
		return !found
	})
	return found
}

// isReleaseOn reports whether call is `obj.Release()`.
func isReleaseOn(info *types.Info, call *ast.CallExpr, obj types.Object) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok || info.Uses[id] != obj {
		return false
	}
	return isMethod(calleeFunc(info, call), devicePkg, "Reservation", "Release")
}

// hbState is the abstract state of one reservation at one program point.
type hbState struct {
	defined    bool // the reservation variable exists
	released   bool // Release() was reached on this path
	terminated bool // the path cannot fall through (return/panic/branch)
}

// hbTracker walks a function body for one reservation variable, reporting
// every exit path that can leave the reservation held. The walk is
// structural and deliberately conservative: loops are assumed to run zero
// times and branch merges require release on *all* fall-through arms, so a
// false "leak" is possible in convoluted shapes (suppress with
// //lint:ignore heapbalance and a reason) but a silent leak on a straight
// error path is not. In silent mode (the facts pass) leaks are counted, not
// reported.
type hbTracker struct {
	pass     *Pass
	info     *types.Info
	obj      types.Object
	fn       string
	deferred bool
	silent   bool
	leaks    int
}

func (t *hbTracker) stmts(list []ast.Stmt, st hbState) hbState {
	for _, s := range list {
		if st.terminated {
			break // unreachable tail
		}
		st = t.stmt(s, st)
	}
	return st
}

func (t *hbTracker) stmt(s ast.Stmt, st hbState) hbState {
	switch s := s.(type) {
	case *ast.AssignStmt:
		if s.Tok == token.DEFINE {
			for _, lhs := range s.Lhs {
				if id, ok := lhs.(*ast.Ident); ok && t.info.Defs[id] == t.obj {
					return hbState{defined: true}
				}
			}
		}
		return st
	case *ast.ExprStmt:
		if call, ok := ast.Unparen(s.X).(*ast.CallExpr); ok {
			if st.defined && (isReleaseOn(t.info, call, t.obj) || isReleasingCallOn(t.pass, call, t.obj)) {
				st.released = true
			}
			if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && id.Name == "panic" {
				if _, isBuiltin := t.info.Uses[id].(*types.Builtin); isBuiltin {
					st.terminated = true // builtin panic unwinds the path
				}
			}
		}
		return st
	case *ast.ReturnStmt:
		if st.defined && !st.released && !t.deferred {
			t.leaks++
			if !t.silent {
				t.pass.Reportf(s.Pos(), "device reservation %q leaks: this return path in %s does not release it", t.obj.Name(), t.fn)
			}
		}
		st.terminated = true
		return st
	case *ast.BranchStmt:
		st.terminated = true // leaves this statement list; merges stay conservative
		return st
	case *ast.BlockStmt:
		return t.stmts(s.List, st)
	case *ast.LabeledStmt:
		return t.stmt(s.Stmt, st)
	case *ast.IfStmt:
		thenSt := t.stmts(s.Body.List, st)
		elseSt := st
		if s.Else != nil {
			elseSt = t.stmt(s.Else, st)
		}
		return mergeStates(thenSt, elseSt)
	case *ast.ForStmt:
		t.stmts(s.Body.List, st) // report exits inside; assume zero iterations after
		return st
	case *ast.RangeStmt:
		t.stmts(s.Body.List, st)
		return st
	case *ast.SwitchStmt:
		return t.clauses(s.Body, st, true)
	case *ast.TypeSwitchStmt:
		return t.clauses(s.Body, st, true)
	case *ast.SelectStmt:
		return t.clauses(s.Body, st, false)
	default:
		return st
	}
}

// clauses merges the case bodies of a switch or select. Without a default
// clause a switch can fall through unchanged, so the entry state joins the
// merge; a select always executes some clause.
func (t *hbTracker) clauses(body *ast.BlockStmt, st hbState, implicitDefault bool) hbState {
	var outs []hbState
	hasDefault := false
	for _, c := range body.List {
		var stmts []ast.Stmt
		switch c := c.(type) {
		case *ast.CaseClause:
			stmts = c.Body
			hasDefault = hasDefault || c.List == nil
		case *ast.CommClause:
			stmts = c.Body
			hasDefault = hasDefault || c.Comm == nil
		}
		outs = append(outs, t.stmts(stmts, st))
	}
	if implicitDefault && !hasDefault {
		outs = append(outs, st)
	}
	if len(outs) == 0 {
		return st
	}
	merged := outs[0]
	for _, o := range outs[1:] {
		merged = mergeStates(merged, o)
	}
	return merged
}

// mergeStates joins two branch outcomes: the merged path is released only if
// every arm that can fall through released, and terminated only if no arm
// falls through.
func mergeStates(a, b hbState) hbState {
	switch {
	case a.terminated && b.terminated:
		return hbState{defined: a.defined || b.defined, terminated: true}
	case a.terminated:
		return b
	case b.terminated:
		return a
	default:
		return hbState{
			defined:  a.defined || b.defined,
			released: a.released && b.released,
		}
	}
}

// parentMap records the parent of every node under root.
func parentMap(root ast.Node) map[ast.Node]ast.Node {
	m := map[ast.Node]ast.Node{}
	var stack []ast.Node
	ast.Inspect(root, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		if len(stack) > 0 {
			m[n] = stack[len(stack)-1]
		}
		stack = append(stack, n)
		return true
	})
	return m
}
