package trace

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"time"
)

// Chrome trace_event export: the JSON Array Format consumed by
// chrome://tracing and Perfetto. Spans become complete ("X") events — one
// horizontal bar per operator attempt — and cache/placement decisions become
// instant ("i") events. Timestamps are virtual microseconds, so the rendered
// timeline is the simulated timeline of the run.
//
// Lane layout: pid 1 is the run; each query gets its own tid (its operator
// spans nest inside the query span), and instant events share tid 0.

// chromeEvent is one entry of the traceEvents array. Field order is the
// serialization order, which keeps exports byte-stable for golden tests.
type chromeEvent struct {
	Name string          `json:"name"`
	Cat  string          `json:"cat,omitempty"`
	Ph   string          `json:"ph"`
	Ts   float64         `json:"ts"`
	Dur  *float64        `json:"dur,omitempty"`
	Pid  int             `json:"pid"`
	Tid  int             `json:"tid"`
	S    string          `json:"s,omitempty"`
	Args json.RawMessage `json:"args,omitempty"`
}

// spanArgs carries the span fields through the args object.
type spanArgs struct {
	Query         string  `json:"query"`
	Op            string  `json:"op,omitempty"`
	Class         string  `json:"class"`
	Proc          string  `json:"proc,omitempty"`
	Node          int     `json:"node"`
	QueueWaitUS   float64 `json:"queue_wait_us"`
	TransferUS    float64 `json:"transfer_us"`
	Abort         string  `json:"abort,omitempty"`
	Attempt       int     `json:"attempt"`
	HeapHighWater int64   `json:"heap_high_water"`
	// Parallelism fields are omitted when zero so traces from serial runs
	// (and their goldens) are byte-identical to the pre-parallel format.
	KernelWorkers int   `json:"kernel_workers,omitempty"`
	Morsels       int64 `json:"morsels,omitempty"`
	// Tenant is omitted when empty so benchmark traces keep the pre-front-door
	// format byte-identical.
	Tenant string `json:"tenant,omitempty"`
	// Compression is omitted when empty (uncompressed base columns) so
	// goldens from uncompressed databases stay byte-identical.
	Compression string `json:"compression,omitempty"`
	// Actuals are omitted when zero so traces recorded before EXPLAIN
	// ANALYZE (and query-level spans) keep the earlier format.
	Rows            int64 `json:"rows,omitempty"`
	OutBytes        int64 `json:"out_bytes,omitempty"`
	DecompressBytes int64 `json:"decompress_bytes,omitempty"`
	// Pipeline fields are omitted when zero so serial-run traces (and their
	// goldens) are byte-identical to the pre-pipeline format.
	PipelineDepth int     `json:"pipeline_depth,omitempty"`
	Chunks        int64   `json:"chunks,omitempty"`
	CPUChunks     int64   `json:"cpu_chunks,omitempty"`
	Overlap       float64 `json:"overlap,omitempty"`
}

// eventArgs carries the event fields through the args object.
type eventArgs struct {
	Subject string `json:"subject"`
	Reason  string `json:"reason,omitempty"`
}

// threadArgs names a lane via a metadata event.
type threadArgs struct {
	Name string `json:"name"`
}

// chromeFile is the top-level object of the export.
type chromeFile struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

func micros(d time.Duration) float64 { return float64(d) / float64(time.Microsecond) }

// WriteChrome serializes spans and events as Chrome trace_event JSON.
func WriteChrome(w io.Writer, spans []Span, events []Event) error {
	out := chromeFile{DisplayTimeUnit: "ms", TraceEvents: []chromeEvent{}}

	// Assign one lane (tid) per query, in order of first appearance; lane 0
	// holds the instant events.
	lanes := map[string]int{}
	var laneNames []string
	for _, s := range spans {
		if _, ok := lanes[s.Query]; !ok {
			lanes[s.Query] = len(lanes) + 1
			laneNames = append(laneNames, s.Query)
		}
	}
	for i, name := range laneNames {
		args, err := json.Marshal(threadArgs{Name: name})
		if err != nil {
			return err
		}
		out.TraceEvents = append(out.TraceEvents, chromeEvent{
			Name: "thread_name", Ph: "M", Pid: 1, Tid: i + 1, Args: args,
		})
	}

	for _, s := range spans {
		args, err := json.Marshal(spanArgs{
			Query:           s.Query,
			Op:              s.Op,
			Class:           s.Class,
			Proc:            s.Proc,
			Node:            s.Node,
			QueueWaitUS:     micros(s.QueueWait),
			TransferUS:      micros(s.Transfer),
			Abort:           s.Abort,
			Attempt:         s.Attempt,
			HeapHighWater:   s.HeapHighWater,
			KernelWorkers:   s.KernelWorkers,
			Morsels:         s.MorselCount,
			Tenant:          s.Tenant,
			Compression:     s.Compression,
			Rows:            s.Rows,
			OutBytes:        s.OutBytes,
			DecompressBytes: s.DecompressBytes,
			PipelineDepth:   s.PipelineDepth,
			Chunks:          s.ChunkCount,
			CPUChunks:       s.CPUChunks,
			Overlap:         s.Overlap,
		})
		if err != nil {
			return err
		}
		dur := micros(s.Duration())
		cat := "operator"
		if s.Class == "query" {
			cat = "query"
		}
		out.TraceEvents = append(out.TraceEvents, chromeEvent{
			Name: s.Name, Cat: cat, Ph: "X", Ts: micros(s.Start), Dur: &dur,
			Pid: 1, Tid: lanes[s.Query], Args: args,
		})
	}
	for _, ev := range events {
		args, err := json.Marshal(eventArgs{Subject: ev.Subject, Reason: ev.Reason})
		if err != nil {
			return err
		}
		out.TraceEvents = append(out.TraceEvents, chromeEvent{
			Name: ev.Kind, Cat: "decision", Ph: "i", Ts: micros(ev.At),
			Pid: 1, Tid: 0, S: "g", Args: args,
		})
	}

	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(out)
}

// ReadChrome parses a Chrome trace_event export written by WriteChrome back
// into spans and events (the summarizer's input). Spans come back sorted by
// start time, ties by name, so downstream reports are deterministic even if
// the file was reordered.
func ReadChrome(r io.Reader) ([]Span, []Event, error) {
	var file chromeFile
	dec := json.NewDecoder(r)
	if err := dec.Decode(&file); err != nil {
		return nil, nil, fmt.Errorf("trace: invalid chrome trace: %w", err)
	}
	var spans []Span
	var events []Event
	for _, ce := range file.TraceEvents {
		switch ce.Ph {
		case "X":
			var args spanArgs
			if err := json.Unmarshal(ce.Args, &args); err != nil {
				return nil, nil, fmt.Errorf("trace: span %q: %w", ce.Name, err)
			}
			var dur float64
			if ce.Dur != nil {
				dur = *ce.Dur
			}
			start := time.Duration(ce.Ts * float64(time.Microsecond))
			spans = append(spans, Span{
				Query:           args.Query,
				Name:            ce.Name,
				Op:              args.Op,
				Class:           args.Class,
				Proc:            args.Proc,
				Node:            args.Node,
				Start:           start,
				End:             start + time.Duration(dur*float64(time.Microsecond)),
				QueueWait:       time.Duration(args.QueueWaitUS * float64(time.Microsecond)),
				Transfer:        time.Duration(args.TransferUS * float64(time.Microsecond)),
				Abort:           args.Abort,
				Attempt:         args.Attempt,
				HeapHighWater:   args.HeapHighWater,
				KernelWorkers:   args.KernelWorkers,
				MorselCount:     args.Morsels,
				Tenant:          args.Tenant,
				Compression:     args.Compression,
				Rows:            args.Rows,
				OutBytes:        args.OutBytes,
				DecompressBytes: args.DecompressBytes,
				PipelineDepth:   args.PipelineDepth,
				ChunkCount:      args.Chunks,
				CPUChunks:       args.CPUChunks,
				Overlap:         args.Overlap,
			})
		case "i", "I":
			var args eventArgs
			if err := json.Unmarshal(ce.Args, &args); err != nil {
				return nil, nil, fmt.Errorf("trace: event %q: %w", ce.Name, err)
			}
			events = append(events, Event{
				At:      time.Duration(ce.Ts * float64(time.Microsecond)),
				Kind:    ce.Name,
				Subject: args.Subject,
				Reason:  args.Reason,
			})
		}
	}
	sort.SliceStable(spans, func(i, j int) bool {
		if spans[i].Start != spans[j].Start {
			return spans[i].Start < spans[j].Start
		}
		return spans[i].Name < spans[j].Name
	})
	sort.SliceStable(events, func(i, j int) bool { return events[i].At < events[j].At })
	return spans, events, nil
}
