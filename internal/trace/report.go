package trace

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"time"
)

// errWriter latches the first write error so the renderers can report it
// once at the end instead of checking every Fprintf.
type errWriter struct {
	w   io.Writer
	err error
}

func (ew *errWriter) printf(format string, args ...any) {
	if ew.err != nil {
		return
	}
	_, ew.err = fmt.Fprintf(ew.w, format, args...)
}

// Waterfall prints a per-query waterfall of the trace: one block per query,
// one bar per operator attempt, offset and scaled inside the query's time
// window — the textual rendering of what chrome://tracing shows graphically.
// Output is deterministic for a deterministic trace. The returned error is
// the first write error, if any.
func Waterfall(w io.Writer, spans []Span, events []Event) error {
	ew := &errWriter{w: w}
	queries, ops, _ := splitSpans(spans)
	if len(queries) == 0 && len(ops) == 0 {
		ew.printf("trace: no spans\n")
		return ew.err
	}

	// Queries in start order; operator spans attach to their query id.
	sort.SliceStable(queries, func(i, j int) bool {
		if queries[i].Start != queries[j].Start {
			return queries[i].Start < queries[j].Start
		}
		return queries[i].Query < queries[j].Query
	})
	byQuery := make(map[string][]Span)
	for _, s := range ops {
		byQuery[s.Query] = append(byQuery[s.Query], s)
	}
	// Operator spans whose query span fell out of the ring still get a
	// synthetic block so nothing silently disappears.
	for q, list := range byQuery {
		if !hasQuery(queries, q) {
			syn := Span{Query: q, Name: q, Class: "query", Start: list[0].Start}
			for _, s := range list {
				if s.End > syn.End {
					syn.End = s.End
				}
			}
			queries = append(queries, syn)
		}
	}

	const barWidth = 32
	for _, q := range queries {
		list := byQuery[q.Query]
		sort.SliceStable(list, func(i, j int) bool {
			if list[i].Start != list[j].Start {
				return list[i].Start < list[j].Start
			}
			return list[i].Name < list[j].Name
		})
		var gpu, cpu, aborts int
		for _, s := range list {
			if s.Abort != "" {
				aborts++
			} else if s.Proc == "gpu" {
				gpu++
			} else {
				cpu++
			}
		}
		status := ""
		if q.Abort != "" {
			status = "  FAILED(" + q.Abort + ")"
		}
		ew.printf("%s  start=%s  latency=%s  ops=%d (gpu=%d cpu=%d aborted=%d)%s\n",
			q.Query, fmtDur(q.Start), fmtDur(q.Duration()), len(list), gpu, cpu, aborts, status)
		window := q.Duration()
		for _, s := range list {
			bar := renderBar(s.Start-q.Start, s.Duration(), window, barWidth)
			mark := s.Proc
			if s.Abort != "" {
				mark = s.Proc + "!" + s.Abort
			}
			// Parallelism is shown only when a kernel pool was active, so
			// serial traces render byte-identically to older reports.
			par := ""
			if s.KernelWorkers > 0 {
				par = fmt.Sprintf(" workers=%d morsels=%d", s.KernelWorkers, s.MorselCount)
			}
			// Pipelined attempts annotate their chunk schedule; serial spans
			// carry no pipeline fields, keeping older reports byte-identical.
			if s.ChunkCount > 0 {
				par += fmt.Sprintf(" pipe=depth:%d,chunks:%d,cpu:%d,overlap:%.0f%%",
					s.PipelineDepth, s.ChunkCount, s.CPUChunks, s.Overlap*100)
			}
			ew.printf("  %-7s |%s| %-9s +%-9s %-9s wait=%-9s xfer=%-9s %s%s\n",
				trimQuery(s.Name, s.Query), bar, mark, fmtDur(s.Start-q.Start),
				fmtDur(s.Duration()), fmtDur(s.QueueWait), fmtDur(s.Transfer), s.Op, par)
		}
	}

	if len(events) > 0 {
		counts := make(map[string]int)
		for _, ev := range events {
			counts[ev.Kind]++
		}
		kinds := make([]string, 0, len(counts))
		for k := range counts {
			kinds = append(kinds, k)
		}
		sort.Strings(kinds)
		ew.printf("events:")
		for _, k := range kinds {
			ew.printf(" %s=%d", k, counts[k])
		}
		ew.printf("\n")
	}
	return ew.err
}

// splitSpans separates query-level spans from operator spans. Pipeline chunk
// stage spans (Class "chunk") are sub-attempt detail — counting them as
// operator attempts would corrupt per-node accounting — so they come back in
// their own slice; only the pipeline view reads them.
func splitSpans(spans []Span) (queries, ops, chunks []Span) {
	for _, s := range spans {
		switch s.Class {
		case "query":
			queries = append(queries, s)
		case "chunk":
			chunks = append(chunks, s)
		default:
			ops = append(ops, s)
		}
	}
	return queries, ops, chunks
}

func hasQuery(queries []Span, id string) bool {
	for _, q := range queries {
		if q.Query == id {
			return true
		}
	}
	return false
}

// trimQuery shortens "q0001/op003" to "op003" inside its query block.
func trimQuery(name, query string) string {
	if len(name) > len(query)+1 && name[:len(query)] == query && name[len(query)] == '/' {
		return name[len(query)+1:]
	}
	return name
}

// renderBar draws an offset duration bar of the given width.
func renderBar(offset, dur, window time.Duration, width int) string {
	if window <= 0 {
		window = 1
	}
	lo := int(float64(offset) / float64(window) * float64(width))
	hi := int(float64(offset+dur) / float64(window) * float64(width))
	if lo < 0 {
		lo = 0
	}
	if hi > width {
		hi = width
	}
	if hi <= lo {
		hi = lo + 1 // every span is visible, however short
	}
	if lo >= width {
		lo, hi = width-1, width
	}
	bar := make([]byte, width)
	for i := range bar {
		switch {
		case i >= lo && i < hi:
			bar[i] = '='
		default:
			bar[i] = ' '
		}
	}
	return string(bar)
}

// fmtDur renders a virtual duration compactly and deterministically.
func fmtDur(d time.Duration) string {
	return d.Round(100 * time.Nanosecond).String()
}

// Summary prints per-query aggregates of the trace (count, mean latency) —
// the quick textual overview tracereport leads with. The returned error is
// the first write error, if any.
func Summary(w io.Writer, spans []Span) error {
	ew := &errWriter{w: w}
	queries, ops, _ := splitSpans(spans)
	type agg struct {
		name    string
		total   time.Duration
		ops     int
		aborted int
	}
	opsByQuery := make(map[string][]Span)
	for _, s := range ops {
		opsByQuery[s.Query] = append(opsByQuery[s.Query], s)
	}
	ew.printf("queries=%d operator-spans=%d\n", len(queries), len(ops))
	var rows []agg
	for _, q := range queries {
		a := agg{name: q.Query, total: q.Duration()}
		for _, s := range opsByQuery[q.Query] {
			a.ops++
			if s.Abort != "" {
				a.aborted++
			}
		}
		rows = append(rows, a)
	}
	sort.SliceStable(rows, func(i, j int) bool { return rows[i].name < rows[j].name })
	for _, a := range rows {
		ew.printf("  %-8s latency=%-12s ops=%-4d aborted=%d\n",
			a.name, fmtDur(a.total), a.ops, a.aborted)
	}
	return ew.err
}

// Slowest prints the top-N queries by wall time, each with a per-operator
// breakdown: for every plan node, the summed wall/queue/transfer time across
// attempts, the processor of the final attempt, and the actual rows/bytes it
// produced — the offline twin of EXPLAIN ANALYZE, driven purely from spans.
// n <= 0 means all queries. The returned error is the first write error.
func Slowest(w io.Writer, spans []Span, n int) error {
	ew := &errWriter{w: w}
	queries, ops, _ := splitSpans(spans)
	if len(queries) == 0 {
		ew.printf("trace: no query spans\n")
		return ew.err
	}
	sort.SliceStable(queries, func(i, j int) bool {
		if queries[i].Duration() != queries[j].Duration() {
			return queries[i].Duration() > queries[j].Duration()
		}
		return queries[i].Query < queries[j].Query
	})
	if n > 0 && n < len(queries) {
		queries = queries[:n]
	}
	opsByQuery := make(map[string][]Span)
	for _, s := range ops {
		opsByQuery[s.Query] = append(opsByQuery[s.Query], s)
	}
	for rank, q := range queries {
		status := "ok"
		if q.Abort != "" {
			status = "FAILED(" + q.Abort + ")"
		}
		tenant := ""
		if q.Tenant != "" {
			tenant = "  tenant=" + q.Tenant
		}
		ew.printf("#%d %s  latency=%s  status=%s%s\n",
			rank+1, q.Query, fmtDur(q.Duration()), status, tenant)
		for _, row := range perNodeBreakdown(opsByQuery[q.Query]) {
			ew.printf("  node=%-3d %-7s wall=%-9s wait=%-9s xfer=%-9s attempts=%d rows=%-8d bytes=%-10d %s\n",
				row.Node, row.Proc, fmtDur(row.Wall), fmtDur(row.QueueWait),
				fmtDur(row.Transfer), row.Attempts, row.Rows, row.OutBytes, row.Op)
		}
	}
	return ew.err
}

// NodeBreakdown aggregates one plan node's operator attempts within a query:
// durations sum across attempts; processor and actuals come from the final
// attempt (the one that completed, or the last to abort).
type NodeBreakdown struct {
	Node      int
	Op        string
	Proc      string
	Attempts  int
	Wall      time.Duration
	QueueWait time.Duration
	Transfer  time.Duration
	Rows      int64
	OutBytes  int64
}

// perNodeBreakdown folds one query's operator spans into per-node rows,
// ordered by node id. Spans are grouped by plan node id, so retries and the
// CPU fallback collapse into one row with attempts > 1.
func perNodeBreakdown(ops []Span) []NodeBreakdown {
	byNode := make(map[int]*NodeBreakdown)
	lastAttempt := make(map[int]int)
	var order []int
	for _, s := range ops {
		row := byNode[s.Node]
		if row == nil {
			row = &NodeBreakdown{Node: s.Node}
			byNode[s.Node] = row
			lastAttempt[s.Node] = -1
			order = append(order, s.Node)
		}
		row.Attempts++
		row.Wall += s.Duration()
		row.QueueWait += s.QueueWait
		row.Transfer += s.Transfer
		// The highest-numbered attempt is the final one and carries the
		// authoritative processor and actuals (aborted attempts record zero
		// rows by construction).
		if s.Attempt >= lastAttempt[s.Node] {
			lastAttempt[s.Node] = s.Attempt
			row.Op = s.Op
			row.Proc = s.Proc
			if s.Abort != "" {
				row.Proc = s.Proc + "!" + s.Abort
			}
			row.Rows = s.Rows
			row.OutBytes = s.OutBytes
		}
	}
	sort.Ints(order)
	out := make([]NodeBreakdown, 0, len(order))
	for _, id := range order {
		out = append(out, *byNode[id])
	}
	return out
}

// QuerySummary is the machine-readable per-query aggregate emitted by
// SummaryJSON (tracereport -json). Virtual times are reported in
// microseconds: integral, lossless for the simulator's resolutions, and
// directly comparable with the histogram bucket edges.
type QuerySummary struct {
	Query      string `json:"query"`
	StartUS    int64  `json:"start_us"`
	LatencyUS  int64  `json:"latency_us"`
	Ops        int    `json:"ops"`
	GPUOps     int    `json:"gpu_ops"`
	CPUOps     int    `json:"cpu_ops"`
	AbortedOps int    `json:"aborted_ops"`
	// KernelWorkers is the largest kernel pool observed among the query's
	// operators and Morsels the total morsel count; both are omitted for
	// serial traces so existing goldens and consumers are unaffected.
	KernelWorkers int   `json:"kernel_workers,omitempty"`
	Morsels       int64 `json:"morsels,omitempty"`
	// Pipeline fields sum across the query's pipelined operator attempts;
	// OverlapPct is the query span's transfer-overlap ratio. All omitted for
	// non-pipelined traces so existing goldens are unaffected.
	PipelineChunks    int64   `json:"pipeline_chunks,omitempty"`
	PipelineCPUChunks int64   `json:"pipeline_cpu_chunks,omitempty"`
	OverlapPct        float64 `json:"overlap_pct,omitempty"`
	Failed            string  `json:"failed,omitempty"`
}

// SummaryJSON writes the per-query aggregates as JSON Lines: one object per
// query, sorted by query id, deterministic for a deterministic trace. The
// returned error is the first write or encode error, if any.
func SummaryJSON(w io.Writer, spans []Span) error {
	queries, ops, _ := splitSpans(spans)
	opsByQuery := make(map[string][]Span)
	for _, s := range ops {
		opsByQuery[s.Query] = append(opsByQuery[s.Query], s)
	}
	sort.SliceStable(queries, func(i, j int) bool { return queries[i].Query < queries[j].Query })
	enc := json.NewEncoder(w)
	for _, q := range queries {
		row := QuerySummary{
			Query:     q.Query,
			StartUS:   int64(q.Start / time.Microsecond),
			LatencyUS: int64(q.Duration() / time.Microsecond),
			Failed:    q.Abort,
		}
		for _, s := range opsByQuery[q.Query] {
			row.Ops++
			switch {
			case s.Abort != "":
				row.AbortedOps++
			case s.Proc == "gpu":
				row.GPUOps++
			default:
				row.CPUOps++
			}
			if s.KernelWorkers > row.KernelWorkers {
				row.KernelWorkers = s.KernelWorkers
			}
			row.Morsels += s.MorselCount
			row.PipelineChunks += s.ChunkCount
			row.PipelineCPUChunks += s.CPUChunks
		}
		if q.Overlap > 0 {
			row.OverlapPct = q.Overlap * 100
		}
		if err := enc.Encode(row); err != nil {
			return err
		}
	}
	return nil
}

// PipelineView prints the per-query pipeline report (tracereport -pipeline):
// for every query that ran pipelined operators, the chunk schedule (chunks,
// CPU-executed chunks, depth), the transfer-overlap ratio, and the busy
// fraction of each resource lane — h2d uploads, device compute, d2h
// downloads — within the query's window, computed as the interval union of
// the chunk stage spans. Queries without chunk spans are skipped; a trace
// with none reports that explicitly. The returned error is the first write
// error, if any.
func PipelineView(w io.Writer, spans []Span) error {
	ew := &errWriter{w: w}
	queries, ops, chunks := splitSpans(spans)
	if len(chunks) == 0 {
		ew.printf("trace: no pipelined operators\n")
		return ew.err
	}
	chunksByQuery := make(map[string][]Span)
	for _, s := range chunks {
		chunksByQuery[s.Query] = append(chunksByQuery[s.Query], s)
	}
	opsByQuery := make(map[string][]Span)
	for _, s := range ops {
		opsByQuery[s.Query] = append(opsByQuery[s.Query], s)
	}
	sort.SliceStable(queries, func(i, j int) bool { return queries[i].Query < queries[j].Query })
	for _, q := range queries {
		cs := chunksByQuery[q.Query]
		if len(cs) == 0 {
			continue
		}
		var depth int
		var chunkCount, cpuChunks int64
		for _, s := range opsByQuery[q.Query] {
			if s.ChunkCount == 0 {
				continue
			}
			chunkCount += s.ChunkCount
			cpuChunks += s.CPUChunks
			if s.PipelineDepth > depth {
				depth = s.PipelineDepth
			}
		}
		var up, comp, down []Span
		for _, s := range cs {
			switch s.Op {
			case "upload":
				up = append(up, s)
			case "download":
				down = append(down, s)
			case "compute":
				if s.Proc == "gpu" {
					comp = append(comp, s)
				}
			}
		}
		window := q.Duration()
		ew.printf("%s  latency=%s  depth=%d  chunks=%d (cpu=%d)  overlap=%.0f%%\n",
			q.Query, fmtDur(window), depth, chunkCount, cpuChunks, q.Overlap*100)
		ew.printf("  h2d     busy=%-9s util=%s\n", fmtDur(unionDuration(up)), fmtPct(unionDuration(up), window))
		ew.printf("  compute busy=%-9s util=%s\n", fmtDur(unionDuration(comp)), fmtPct(unionDuration(comp), window))
		ew.printf("  d2h     busy=%-9s util=%s\n", fmtDur(unionDuration(down)), fmtPct(unionDuration(down), window))
	}
	return ew.err
}

// unionDuration returns the total length of the interval union of the spans —
// wall time during which at least one of them was active. Overlapping chunk
// stages (concurrent links, parallel CPU chunks) are counted once.
func unionDuration(spans []Span) time.Duration {
	if len(spans) == 0 {
		return 0
	}
	iv := make([]Span, len(spans))
	copy(iv, spans)
	sort.SliceStable(iv, func(i, j int) bool { return iv[i].Start < iv[j].Start })
	var total time.Duration
	curStart, curEnd := iv[0].Start, iv[0].End
	for _, s := range iv[1:] {
		if s.Start > curEnd {
			total += curEnd - curStart
			curStart, curEnd = s.Start, s.End
		} else if s.End > curEnd {
			curEnd = s.End
		}
	}
	return total + (curEnd - curStart)
}

// fmtPct renders part/whole as a percentage, guarding an empty window.
func fmtPct(part, whole time.Duration) string {
	if whole <= 0 {
		return "0%"
	}
	return fmt.Sprintf("%.0f%%", float64(part)/float64(whole)*100)
}
