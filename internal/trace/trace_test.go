package trace

import (
	"bytes"
	"strings"
	"sync"
	"testing"
	"time"
)

func check(t *testing.T, err error) {
	t.Helper()
	if err != nil {
		t.Fatal(err)
	}
}

func span(query, name string, start, end time.Duration) Span {
	return Span{Query: query, Name: name, Op: "scan", Class: "selection",
		Proc: "gpu", Start: start, End: end}
}

func TestTracerRecordsInOrder(t *testing.T) {
	tr := New(8)
	tr.Span(span("q1", "q1/op1", 0, time.Millisecond))
	tr.Span(span("q1", "q1/op2", time.Millisecond, 2*time.Millisecond))
	tr.Event(Event{At: time.Microsecond, Kind: "admit", Subject: "lo.key"})
	spans := tr.Spans()
	if len(spans) != 2 || spans[0].Name != "q1/op1" || spans[1].Name != "q1/op2" {
		t.Fatalf("spans = %+v", spans)
	}
	events := tr.Events()
	if len(events) != 1 || events[0].Kind != "admit" {
		t.Fatalf("events = %+v", events)
	}
	if s, e := tr.Dropped(); s != 0 || e != 0 {
		t.Fatalf("dropped %d/%d on a non-full ring", s, e)
	}
}

func TestTracerRingWraps(t *testing.T) {
	tr := New(4)
	for i := 0; i < 10; i++ {
		tr.Span(span("q1", "q1/op"+string(rune('0'+i)), time.Duration(i), time.Duration(i+1)))
	}
	spans := tr.Spans()
	if len(spans) != 4 {
		t.Fatalf("ring holds %d spans, want 4", len(spans))
	}
	// Oldest-first: the last four emitted, in order.
	if spans[0].Start != 6 || spans[3].Start != 9 {
		t.Fatalf("ring order wrong: %+v", spans)
	}
	if dropped, _ := tr.Dropped(); dropped != 6 {
		t.Fatalf("dropped = %d, want 6", dropped)
	}
	tr.Reset()
	if len(tr.Spans()) != 0 {
		t.Fatal("reset must clear the ring")
	}
}

func TestNilTracerIsDisabled(t *testing.T) {
	var tr *Tracer
	tr.Span(Span{})   // must not panic
	tr.Event(Event{}) // must not panic
	tr.Reset()        // must not panic
	if tr.Enabled() {
		t.Fatal("nil tracer reports enabled")
	}
	if tr.Spans() != nil || tr.Events() != nil {
		t.Fatal("nil tracer returned data")
	}
	if s, e := tr.Dropped(); s != 0 || e != 0 {
		t.Fatal("nil tracer dropped counts")
	}
}

// TestDisabledPathAllocates nothing: the engine's per-operator trace hooks
// boil down to these calls when tracing is off, and the acceptance criterion
// is zero allocations per operator on the disabled path.
func TestDisabledPathAllocations(t *testing.T) {
	var tr *Tracer
	s := span("q1", "q1/op1", 0, time.Millisecond)
	ev := Event{At: 0, Kind: "admit", Subject: "col"}
	allocs := testing.AllocsPerRun(1000, func() {
		tr.Span(s)
		tr.Event(ev)
		_ = tr.Enabled()
	})
	if allocs != 0 {
		t.Fatalf("disabled tracer path allocates %.1f per op, want 0", allocs)
	}
}

// The enabled steady-state path must not allocate either — spans land in the
// preallocated ring.
func TestEnabledSteadyStateAllocations(t *testing.T) {
	tr := New(16)
	s := span("q1", "q1/op1", 0, time.Millisecond)
	allocs := testing.AllocsPerRun(1000, func() {
		tr.Span(s)
	})
	if allocs != 0 {
		t.Fatalf("enabled span emit allocates %.1f per op, want 0", allocs)
	}
}

func TestTracerConcurrent(t *testing.T) {
	tr := New(128)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				tr.Span(span("q1", "q1/op", time.Duration(i), time.Duration(i+1)))
				tr.Event(Event{At: time.Duration(i), Kind: "admit"})
			}
		}(w)
	}
	wg.Wait()
	if len(tr.Spans()) != 128 {
		t.Fatalf("ring holds %d", len(tr.Spans()))
	}
}

func TestChromeRoundTrip(t *testing.T) {
	spans := []Span{
		{Query: "q0001", Name: "q0001", Class: "query", Node: -1,
			Start: 0, End: 3 * time.Millisecond},
		{Query: "q0001", Name: "q0001/op001", Op: "scan(lineorder)", Class: "selection",
			Proc: "gpu", Node: 1, Start: 10 * time.Microsecond, End: time.Millisecond,
			QueueWait: 2 * time.Microsecond, Transfer: 100 * time.Microsecond,
			Attempt: 0, HeapHighWater: 4096},
		{Query: "q0001", Name: "q0001/op002", Op: "join(a=b)", Class: "join",
			Proc: "gpu", Node: 2, Start: time.Millisecond, End: 1500 * time.Microsecond,
			Abort: "oom", Attempt: 0, HeapHighWater: 8192},
		{Query: "q0001", Name: "q0001/op002", Op: "join(a=b)", Class: "join",
			Proc: "cpu", Node: 2, Start: 1500 * time.Microsecond, End: 3 * time.Millisecond,
			Attempt: 1},
	}
	events := []Event{
		{At: 5 * time.Microsecond, Kind: "admit", Subject: "lineorder.lo_custkey", Reason: "operator-demand"},
		{At: time.Millisecond, Kind: "evict", Subject: "date.d_year", Reason: "replacement"},
	}
	var buf bytes.Buffer
	if err := WriteChrome(&buf, spans, events); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{`"traceEvents"`, `"ph": "X"`, `"ph": "i"`, `"ph": "M"`,
		`"abort": "oom"`, `"heap_high_water": 8192`, `"thread_name"`} {
		if !strings.Contains(out, want) {
			t.Fatalf("export missing %s:\n%s", want, out)
		}
	}

	gotSpans, gotEvents, err := ReadChrome(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(gotSpans) != len(spans) || len(gotEvents) != len(events) {
		t.Fatalf("round trip: %d spans %d events", len(gotSpans), len(gotEvents))
	}
	for i, s := range gotSpans {
		if s != spans[i] {
			t.Fatalf("span %d round-trip mismatch:\n got %+v\nwant %+v", i, s, spans[i])
		}
	}
	for i, ev := range gotEvents {
		if ev != events[i] {
			t.Fatalf("event %d mismatch: got %+v want %+v", i, ev, events[i])
		}
	}
}

func TestReadChromeRejectsGarbage(t *testing.T) {
	if _, _, err := ReadChrome(strings.NewReader("not json")); err == nil {
		t.Fatal("garbage accepted")
	}
}

func TestWaterfall(t *testing.T) {
	spans := []Span{
		{Query: "q0001", Name: "q0001", Class: "query", Start: 0, End: 2 * time.Millisecond},
		{Query: "q0001", Name: "q0001/op001", Op: "scan(t)", Class: "selection",
			Proc: "gpu", Start: 0, End: time.Millisecond, Transfer: 50 * time.Microsecond},
		{Query: "q0001", Name: "q0001/op002", Op: "agg(x)", Class: "aggregation",
			Proc: "cpu", Start: time.Millisecond, End: 2 * time.Millisecond,
			QueueWait: 10 * time.Microsecond},
		{Query: "q0001", Name: "q0001/op003", Op: "join(a=b)", Class: "join",
			Proc: "gpu", Start: 0, End: 500 * time.Microsecond, Abort: "oom"},
	}
	events := []Event{{At: 0, Kind: "admit", Subject: "t.x"}}
	var buf bytes.Buffer
	check(t, Waterfall(&buf, spans, events))
	out := buf.String()
	for _, want := range []string{"q0001", "ops=3 (gpu=1 cpu=1 aborted=1)",
		"op001", "gpu!oom", "scan(t)", "events: admit=1"} {
		if !strings.Contains(out, want) {
			t.Fatalf("waterfall missing %q:\n%s", want, out)
		}
	}
	// A trace whose query span was dropped still renders its operators.
	var buf2 bytes.Buffer
	check(t, Waterfall(&buf2, spans[1:], nil))
	if !strings.Contains(buf2.String(), "op001") {
		t.Fatalf("orphan ops not rendered:\n%s", buf2.String())
	}
	var empty bytes.Buffer
	check(t, Waterfall(&empty, nil, nil))
	if !strings.Contains(empty.String(), "no spans") {
		t.Fatal("empty trace must say so")
	}
}

func TestSummary(t *testing.T) {
	spans := []Span{
		{Query: "q0001", Name: "q0001", Class: "query", Start: 0, End: 2 * time.Millisecond},
		{Query: "q0001", Name: "q0001/op001", Op: "scan(t)", Class: "selection",
			Proc: "gpu", Start: 0, End: time.Millisecond, Abort: "fault"},
	}
	var buf bytes.Buffer
	check(t, Summary(&buf, spans))
	out := buf.String()
	if !strings.Contains(out, "queries=1 operator-spans=1") ||
		!strings.Contains(out, "aborted=1") {
		t.Fatalf("summary:\n%s", out)
	}
}
