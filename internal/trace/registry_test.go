package trace

import (
	"sync"
	"testing"
	"time"
)

func TestCounterAndDuration(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("Aborts")
	c.Inc()
	c.Add(4)
	if c.Load() != 5 {
		t.Fatalf("counter = %d, want 5", c.Load())
	}
	if r.Counter("Aborts") != c {
		t.Fatal("re-registering must return the same counter")
	}
	d := r.Duration("WastedTime")
	d.Add(3 * time.Millisecond)
	d.Add(2 * time.Millisecond)
	if d.Load() != 5*time.Millisecond {
		t.Fatalf("duration = %v, want 5ms", d.Load())
	}
	if c.Name() != "Aborts" || d.Name() != "WastedTime" {
		t.Fatalf("names: %q %q", c.Name(), d.Name())
	}
}

func TestGaugeMax(t *testing.T) {
	g := NewRegistry().Gauge("HeapHighWater")
	g.Set(10)
	g.Max(5)
	if g.Load() != 10 {
		t.Fatalf("Max lowered the gauge to %d", g.Load())
	}
	g.Max(20)
	if g.Load() != 20 {
		t.Fatalf("gauge = %d, want 20", g.Load())
	}
}

func TestHistogram(t *testing.T) {
	h := NewRegistry().Histogram("OpRuntimeGPU")
	for _, d := range []time.Duration{500 * time.Nanosecond, time.Microsecond,
		3 * time.Microsecond, 100 * time.Microsecond, 2 * time.Millisecond} {
		h.Observe(d)
	}
	if h.Count() != 5 {
		t.Fatalf("count = %d", h.Count())
	}
	wantSum := 500*time.Nanosecond + time.Microsecond + 3*time.Microsecond +
		100*time.Microsecond + 2*time.Millisecond
	if h.Sum() != wantSum {
		t.Fatalf("sum = %v, want %v", h.Sum(), wantSum)
	}
	if h.Mean() != wantSum/5 {
		t.Fatalf("mean = %v", h.Mean())
	}
	if q := h.Quantile(0.5); q > 8*time.Microsecond {
		t.Fatalf("p50 = %v, want a small bucket edge", q)
	}
	if q := h.Quantile(1.0); q < 2*time.Millisecond {
		t.Fatalf("p100 = %v, must cover the largest observation", q)
	}
	h.Observe(-time.Second) // clamps to zero, never a negative bucket
	if h.Count() != 6 {
		t.Fatalf("negative observation dropped")
	}
}

// TestHistogramQuantileEdges pins the edge semantics documented on Quantile:
// q=0 bounds the minimum, q=1 bounds the maximum, a single observation
// answers every q identically, and the saturated top bucket clamps.
func TestHistogramQuantileEdges(t *testing.T) {
	t.Run("empty", func(t *testing.T) {
		h := NewRegistry().Histogram("h")
		for _, q := range []float64{0, 0.5, 1} {
			if got := h.Quantile(q); got != 0 {
				t.Fatalf("Quantile(%v) on empty histogram = %v, want 0", q, got)
			}
		}
	})
	t.Run("q0-bounds-minimum", func(t *testing.T) {
		h := NewRegistry().Histogram("h")
		h.Observe(3 * time.Microsecond) // bucket 2: [2µs, 4µs)
		h.Observe(time.Second)
		if got := h.Quantile(0); got != 4*time.Microsecond {
			t.Fatalf("Quantile(0) = %v, want the minimum's bucket edge 4µs", got)
		}
	})
	t.Run("q1-bounds-maximum", func(t *testing.T) {
		h := NewRegistry().Histogram("h")
		h.Observe(time.Microsecond)
		h.Observe(100 * time.Microsecond) // bucket 7: [64µs, 128µs)
		if got := h.Quantile(1); got != 128*time.Microsecond {
			t.Fatalf("Quantile(1) = %v, want the maximum's bucket edge 128µs", got)
		}
	})
	t.Run("single-observation", func(t *testing.T) {
		h := NewRegistry().Histogram("h")
		h.Observe(10 * time.Microsecond) // bucket 4: [8µs, 16µs)
		for _, q := range []float64{0, 0.25, 0.5, 0.99, 1} {
			if got := h.Quantile(q); got != 16*time.Microsecond {
				t.Fatalf("Quantile(%v) = %v, want 16µs for every q", q, got)
			}
		}
	})
	t.Run("saturated-top-bucket", func(t *testing.T) {
		h := NewRegistry().Histogram("h")
		h.Observe(1 << 62) // far beyond the largest edge: clamps into top bucket
		top := BucketUpperEdge(histBuckets - 1)
		if got := h.Quantile(1); got != top {
			t.Fatalf("Quantile(1) = %v, want the clamped top edge %v", got, top)
		}
		if got := h.Quantile(0.5); got != top {
			t.Fatalf("Quantile(0.5) = %v, want the clamped top edge %v", got, top)
		}
	})
}

func TestBucketUpperEdge(t *testing.T) {
	cases := []struct {
		i    int
		want time.Duration
	}{
		{-1, time.Microsecond},
		{0, time.Microsecond},
		{1, 2 * time.Microsecond},
		{7, 128 * time.Microsecond},
		{histBuckets - 1, time.Duration(1<<uint(histBuckets-1)) * time.Microsecond},
		{histBuckets + 5, time.Duration(1<<uint(histBuckets-1)) * time.Microsecond},
	}
	for _, c := range cases {
		if got := BucketUpperEdge(c.i); got != c.want {
			t.Fatalf("BucketUpperEdge(%d) = %v, want %v", c.i, got, c.want)
		}
	}
	// Edges must agree with bucketOf: an observation just below the edge
	// lands in the bucket, one at the edge lands in the next.
	for i := 0; i < histBuckets-1; i++ {
		edge := BucketUpperEdge(i)
		if got := bucketOf(edge - time.Microsecond); got > i {
			t.Fatalf("bucketOf(edge-1µs) = %d for bucket %d", got, i)
		}
		if got := bucketOf(edge); got != i+1 {
			t.Fatalf("bucketOf(edge) = %d, want %d", got, i+1)
		}
	}
}

func TestSnapshotDelta(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("ops")
	d := r.Duration("busy")
	g := r.Gauge("depth")
	h := r.Histogram("lat")

	c.Add(3)
	d.Add(time.Millisecond)
	g.Set(7)
	h.Observe(time.Microsecond)
	before := r.Snapshot()

	c.Add(2)
	d.Add(time.Millisecond)
	g.Set(9)
	h.Observe(2 * time.Microsecond)
	after := r.Snapshot()

	delta := after.Delta(before)
	if delta.Counters["ops"] != 2 {
		t.Fatalf("counter delta = %d, want 2", delta.Counters["ops"])
	}
	if delta.Durations["busy"] != time.Millisecond {
		t.Fatalf("duration delta = %v", delta.Durations["busy"])
	}
	if delta.Gauges["depth"] != 9 {
		t.Fatalf("gauge delta must be instantaneous, got %d", delta.Gauges["depth"])
	}
	hd := delta.Histograms["lat"]
	if hd.Count != 1 || hd.Sum != 2*time.Microsecond {
		t.Fatalf("hist delta count=%d sum=%v", hd.Count, hd.Sum)
	}
	var buckets int64
	for _, b := range hd.Buckets {
		buckets += b
	}
	if buckets != 1 {
		t.Fatalf("hist delta buckets sum to %d, want 1", buckets)
	}
}

func TestRegistryNames(t *testing.T) {
	r := NewRegistry()
	r.Counter("b")
	r.Gauge("a")
	r.Histogram("c")
	r.Duration("d")
	names := r.Names()
	want := []string{"a", "b", "c", "d"}
	if len(names) != len(want) {
		t.Fatalf("names = %v", names)
	}
	for i := range want {
		if names[i] != want[i] {
			t.Fatalf("names = %v, want %v", names, want)
		}
	}
}

func TestRegistryKindClash(t *testing.T) {
	r := NewRegistry()
	r.Counter("x")
	defer func() {
		if recover() == nil {
			t.Fatal("registering a gauge under a counter name must panic")
		}
	}()
	r.Gauge("x")
}

// TestRegistryConcurrent exercises every metric kind from parallel
// goroutines; under -race this pins the atomicity the chaos suite relies on
// when it runs engines from test goroutines.
func TestRegistryConcurrent(t *testing.T) {
	r := NewRegistry()
	const workers, perWorker = 8, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c := r.Counter("ops")
			d := r.Duration("busy")
			g := r.Gauge("hw")
			h := r.Histogram("lat")
			for i := 0; i < perWorker; i++ {
				c.Inc()
				d.Add(time.Microsecond)
				g.Max(int64(i))
				h.Observe(time.Duration(i) * time.Microsecond)
				if i%100 == 0 {
					_ = r.Snapshot()
				}
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("ops").Load(); got != workers*perWorker {
		t.Fatalf("counter = %d, want %d", got, workers*perWorker)
	}
	if got := r.Duration("busy").Load(); got != workers*perWorker*time.Microsecond {
		t.Fatalf("duration = %v", got)
	}
	if got := r.Gauge("hw").Load(); got != perWorker-1 {
		t.Fatalf("gauge max = %d, want %d", got, perWorker-1)
	}
	if got := r.Histogram("lat").Count(); got != workers*perWorker {
		t.Fatalf("hist count = %d", got)
	}
}
