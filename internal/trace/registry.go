// Package trace is the engine's observability layer: a metrics registry of
// named atomic counters, gauges, and histograms, plus a structured,
// virtual-time-aware tracer that records one span per operator execution and
// one event per cache/placement decision.
//
// The paper's robustness argument (Figures 10-13, 20) is about *when* and
// *where* operators run — which device, how long they waited, what they
// evicted, why they aborted. Run-wide counters cannot answer those questions;
// spans can. The layer is deterministic (every timestamp is virtual time from
// the simulator clock, never the wall clock) and allocation-light: spans live
// in a preallocated ring buffer, and with tracing disabled (a nil *Tracer)
// every emit is a nil-check and nothing else.
package trace

import (
	"fmt"
	"math"
	"math/bits"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing atomic counter. The simulator itself
// is single-threaded, but engines run from multiple test goroutines under
// -race (the chaos suite) and metrics may be aggregated while another
// engine's run is still in flight, so counters must be atomic.
type Counter struct {
	name string
	v    atomic.Int64
}

// Name returns the registered name.
func (c *Counter) Name() string { return c.name }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Load returns the current value.
func (c *Counter) Load() int64 { return c.v.Load() }

// DurationCounter accumulates virtual time atomically (stored as
// nanoseconds). Virtual durations are measured in time.Duration even though
// they never touch the wall clock.
type DurationCounter struct {
	name string
	ns   atomic.Int64
}

// Name returns the registered name.
func (d *DurationCounter) Name() string { return d.name }

// Add accumulates dur.
func (d *DurationCounter) Add(dur time.Duration) { d.ns.Add(int64(dur)) }

// Load returns the accumulated duration.
func (d *DurationCounter) Load() time.Duration { return time.Duration(d.ns.Load()) }

// Gauge is an atomic instantaneous value (heap high-water mark, queue depth).
type Gauge struct {
	name string
	v    atomic.Int64
}

// Name returns the registered name.
func (g *Gauge) Name() string { return g.name }

// Set stores v.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Max raises the gauge to v if v is larger (a monotonic high-water mark).
func (g *Gauge) Max(v int64) {
	for {
		cur := g.v.Load()
		if v <= cur || g.v.CompareAndSwap(cur, v) {
			return
		}
	}
}

// Load returns the current value.
func (g *Gauge) Load() int64 { return g.v.Load() }

// histBuckets is the number of power-of-two duration buckets: bucket i counts
// observations in [2^(i-1), 2^i) microseconds, bucket 0 counts < 1µs.
const histBuckets = 32

// Histogram is an exponential-bucket duration histogram (power-of-two
// microsecond buckets), atomic like the counters.
type Histogram struct {
	name    string
	count   atomic.Int64
	sumNS   atomic.Int64
	buckets [histBuckets]atomic.Int64
}

// Name returns the registered name.
func (h *Histogram) Name() string { return h.name }

// Observe records one duration.
func (h *Histogram) Observe(d time.Duration) {
	if d < 0 {
		d = 0
	}
	h.count.Add(1)
	h.sumNS.Add(int64(d))
	h.buckets[bucketOf(d)].Add(1)
}

// bucketOf maps a duration to its bucket index.
func bucketOf(d time.Duration) int {
	us := uint64(d / time.Microsecond)
	b := bits.Len64(us) // 0 for <1µs, k for [2^(k-1), 2^k)
	if b >= histBuckets {
		b = histBuckets - 1
	}
	return b
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the accumulated observed time.
func (h *Histogram) Sum() time.Duration { return time.Duration(h.sumNS.Load()) }

// Mean returns the mean observation (0 with no observations).
func (h *Histogram) Mean() time.Duration {
	n := h.count.Load()
	if n == 0 {
		return 0
	}
	return time.Duration(h.sumNS.Load() / n)
}

// Quantile returns an upper bound for the q-quantile (0 ≤ q ≤ 1) from the
// bucket boundaries: the smallest bucket upper edge covering q of the
// observations.
//
// Edge semantics, pinned by TestHistogramQuantileEdges:
//
//   - No observations: 0, for any q.
//   - q = 0 (or q < 1/n): the rank target clamps to the first observation,
//     so the result is the upper edge of the lowest non-empty bucket — a
//     bound on the minimum, not a degenerate 0.
//   - q = 1: the upper edge of the highest non-empty bucket — a bound on
//     the maximum.
//   - Single observation: every q returns the same edge.
//   - Saturated top bucket: observations ≥ 2^(histBuckets-2) µs (≈ 18 min
//     of virtual time) clamp into the last bucket, and any quantile that
//     lands there reports the top edge, 2^(histBuckets-1) µs. The true
//     value may be larger; the exporter renders this bucket as +Inf.
func (h *Histogram) Quantile(q float64) time.Duration {
	n := h.count.Load()
	if n == 0 {
		return 0
	}
	target := int64(q * float64(n))
	if target < 1 {
		target = 1
	}
	var seen int64
	for i := 0; i < histBuckets; i++ {
		seen += h.buckets[i].Load()
		if seen >= target {
			if i == 0 {
				return time.Microsecond
			}
			return time.Duration(1<<uint(i)) * time.Microsecond
		}
	}
	return time.Duration(1<<uint(histBuckets-1)) * time.Microsecond
}

// ratioCenter is the bucket index a ratio of exactly 1.0 falls just above:
// RatioHistogram bucket i covers [2^(i-1-ratioCenter), 2^(i-ratioCenter)),
// so bucket ratioCenter+1 is [1, 2) and the range spans 2^-16 … 2^15 around
// a perfect estimate. Misestimations of 32768× or worse clamp into the edge
// buckets.
const ratioCenter = 16

// RatioHistogram is a dimensionless exponential-bucket histogram for
// estimate/actual ratios (and other log-scale factors). Buckets are powers
// of two centered on 1.0, so a perfect cost model piles everything into the
// [1, 2) bucket and drift is visible as mass sliding toward either tail.
// Atomic like the duration histograms.
type RatioHistogram struct {
	name     string
	count    atomic.Int64
	sumMilli atomic.Int64 // sum in thousandths, atomically accumulable
	buckets  [histBuckets]atomic.Int64
}

// Name returns the registered name.
func (h *RatioHistogram) Name() string { return h.name }

// Observe records one ratio. Non-positive ratios clamp into the lowest
// bucket (they mean "no meaningful estimate", not a measurement).
func (h *RatioHistogram) Observe(r float64) {
	h.count.Add(1)
	if r > 0 {
		h.sumMilli.Add(int64(r * 1000))
	}
	h.buckets[ratioBucketOf(r)].Add(1)
}

// ratioBucketOf maps a ratio to its bucket index: the first bucket whose
// upper edge exceeds it, the top bucket absorbing overflow.
func ratioBucketOf(r float64) int {
	if r <= 0 {
		return 0
	}
	for i := 0; i < histBuckets-1; i++ {
		if r < ratioEdge(i) {
			return i
		}
	}
	return histBuckets - 1
}

// ratioEdge returns the exclusive upper edge of ratio bucket i.
func ratioEdge(i int) float64 {
	exp := i - ratioCenter
	if exp >= 0 {
		return float64(int64(1) << uint(exp))
	}
	return 1 / float64(int64(1)<<uint(-exp))
}

// RatioBucketUpperEdge returns the exclusive upper edge of ratio bucket i;
// exporters must render the top bucket as +Inf.
func RatioBucketUpperEdge(i int) float64 {
	if i < 0 {
		i = 0
	}
	if i >= histBuckets {
		i = histBuckets - 1
	}
	return ratioEdge(i)
}

// Count returns the number of observations.
func (h *RatioHistogram) Count() int64 { return h.count.Load() }

// Sum returns the accumulated observed ratio mass.
func (h *RatioHistogram) Sum() float64 { return float64(h.sumMilli.Load()) / 1000 }

// FloatGauge is an atomic instantaneous float value (q-error of the last
// completed query, a drift factor). Stored as IEEE-754 bits.
type FloatGauge struct {
	name string
	bits atomic.Uint64
}

// Name returns the registered name.
func (g *FloatGauge) Name() string { return g.name }

// Set stores v.
func (g *FloatGauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Max raises the gauge to v if v is larger (a monotonic high-water mark).
func (g *FloatGauge) Max(v float64) {
	for {
		cur := g.bits.Load()
		if v <= math.Float64frombits(cur) || g.bits.CompareAndSwap(cur, math.Float64bits(v)) {
			return
		}
	}
}

// Load returns the current value.
func (g *FloatGauge) Load() float64 { return math.Float64frombits(g.bits.Load()) }

// BucketUpperEdge returns the exclusive upper edge of histogram bucket i:
// 1µs for bucket 0, 2^i µs for bucket i ≥ 1. The top bucket
// (i = len(Buckets)-1) also absorbs every larger observation, so exporters
// must render its edge as +Inf rather than the value returned here.
func BucketUpperEdge(i int) time.Duration {
	if i <= 0 {
		return time.Microsecond
	}
	if i >= histBuckets {
		i = histBuckets - 1
	}
	return time.Duration(1<<uint(i)) * time.Microsecond
}

// HistogramSnapshot is the frozen state of one histogram.
type HistogramSnapshot struct {
	Count   int64
	Sum     time.Duration
	Buckets []int64 // len histBuckets, bucket i = [2^(i-1), 2^i) µs
}

// RatioSnapshot is the frozen state of one ratio histogram.
type RatioSnapshot struct {
	Count   int64
	Sum     float64
	Buckets []int64 // len histBuckets, edges from RatioBucketUpperEdge
}

// Snapshot is a frozen view of a registry: counters and gauges by name, plus
// histogram states. Snapshots subtract (Delta) so callers can meter intervals
// — per query, per phase, per figure point — out of one cumulative registry.
type Snapshot struct {
	Counters    map[string]int64
	Durations   map[string]time.Duration
	Gauges      map[string]int64
	FloatGauges map[string]float64
	Histograms  map[string]HistogramSnapshot
	Ratios      map[string]RatioSnapshot
}

// Delta returns the change from prev to s: counters, durations, and
// histograms subtract; gauges keep their current (instantaneous) value.
// Names absent from prev count from zero.
func (s Snapshot) Delta(prev Snapshot) Snapshot {
	out := Snapshot{
		Counters:    make(map[string]int64, len(s.Counters)),
		Durations:   make(map[string]time.Duration, len(s.Durations)),
		Gauges:      make(map[string]int64, len(s.Gauges)),
		FloatGauges: make(map[string]float64, len(s.FloatGauges)),
		Histograms:  make(map[string]HistogramSnapshot, len(s.Histograms)),
		Ratios:      make(map[string]RatioSnapshot, len(s.Ratios)),
	}
	for name, v := range s.Counters {
		out.Counters[name] = v - prev.Counters[name]
	}
	for name, v := range s.Durations {
		out.Durations[name] = v - prev.Durations[name]
	}
	for name, v := range s.Gauges {
		out.Gauges[name] = v
	}
	for name, v := range s.FloatGauges {
		out.FloatGauges[name] = v
	}
	for name, h := range s.Ratios {
		p := prev.Ratios[name]
		d := RatioSnapshot{
			Count:   h.Count - p.Count,
			Sum:     h.Sum - p.Sum,
			Buckets: make([]int64, len(h.Buckets)),
		}
		for i, b := range h.Buckets {
			if i < len(p.Buckets) {
				b -= p.Buckets[i]
			}
			d.Buckets[i] = b
		}
		out.Ratios[name] = d
	}
	for name, h := range s.Histograms {
		p := prev.Histograms[name]
		d := HistogramSnapshot{
			Count:   h.Count - p.Count,
			Sum:     h.Sum - p.Sum,
			Buckets: make([]int64, len(h.Buckets)),
		}
		for i, b := range h.Buckets {
			if i < len(p.Buckets) {
				b -= p.Buckets[i]
			}
			d.Buckets[i] = b
		}
		out.Histograms[name] = d
	}
	return out
}

// Registry holds named metrics. Registration is idempotent: asking for an
// existing name returns the existing metric, so multiple components can share
// a counter by name. Registration locks; the metrics themselves are lock-free.
type Registry struct {
	mu          sync.Mutex
	counters    map[string]*Counter
	durations   map[string]*DurationCounter
	gauges      map[string]*Gauge
	floatGauges map[string]*FloatGauge
	histograms  map[string]*Histogram
	ratios      map[string]*RatioHistogram
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:    make(map[string]*Counter),
		durations:   make(map[string]*DurationCounter),
		gauges:      make(map[string]*Gauge),
		floatGauges: make(map[string]*FloatGauge),
		histograms:  make(map[string]*Histogram),
		ratios:      make(map[string]*RatioHistogram),
	}
}

// Counter returns the named counter, registering it on first use.
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	if c, ok := r.counters[name]; ok {
		return c
	}
	r.checkFresh(name, "counter")
	c := &Counter{name: name}
	r.counters[name] = c
	return c
}

// Duration returns the named duration counter, registering it on first use.
func (r *Registry) Duration(name string) *DurationCounter {
	r.mu.Lock()
	defer r.mu.Unlock()
	if d, ok := r.durations[name]; ok {
		return d
	}
	r.checkFresh(name, "duration")
	d := &DurationCounter{name: name}
	r.durations[name] = d
	return d
}

// Gauge returns the named gauge, registering it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	if g, ok := r.gauges[name]; ok {
		return g
	}
	r.checkFresh(name, "gauge")
	g := &Gauge{name: name}
	r.gauges[name] = g
	return g
}

// Histogram returns the named histogram, registering it on first use.
func (r *Registry) Histogram(name string) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	if h, ok := r.histograms[name]; ok {
		return h
	}
	r.checkFresh(name, "histogram")
	h := &Histogram{name: name}
	r.histograms[name] = h
	return h
}

// FloatGauge returns the named float gauge, registering it on first use.
func (r *Registry) FloatGauge(name string) *FloatGauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	if g, ok := r.floatGauges[name]; ok {
		return g
	}
	r.checkFresh(name, "floatgauge")
	g := &FloatGauge{name: name}
	r.floatGauges[name] = g
	return g
}

// Ratio returns the named ratio histogram, registering it on first use.
func (r *Registry) Ratio(name string) *RatioHistogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	if h, ok := r.ratios[name]; ok {
		return h
	}
	r.checkFresh(name, "ratio")
	h := &RatioHistogram{name: name}
	r.ratios[name] = h
	return h
}

// checkFresh panics when name is already registered under a different metric
// kind — always a naming bug, and silently returning a second metric would
// split the series.
func (r *Registry) checkFresh(name, kind string) {
	kinds := []struct {
		label string
		has   bool
	}{
		{"counter", r.counters[name] != nil},
		{"duration", r.durations[name] != nil},
		{"gauge", r.gauges[name] != nil},
		{"floatgauge", r.floatGauges[name] != nil},
		{"histogram", r.histograms[name] != nil},
		{"ratio", r.ratios[name] != nil},
	}
	for _, k := range kinds {
		if k.has && k.label != kind {
			panic(fmt.Sprintf("trace: metric %q already registered as a %s", name, k.label))
		}
	}
}

// Names returns every registered metric name, sorted, for diagnostics.
func (r *Registry) Names() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	names := make([]string, 0, len(r.counters)+len(r.durations)+len(r.gauges)+
		len(r.floatGauges)+len(r.histograms)+len(r.ratios))
	for n := range r.counters {
		names = append(names, n)
	}
	for n := range r.durations {
		names = append(names, n)
	}
	for n := range r.gauges {
		names = append(names, n)
	}
	for n := range r.floatGauges {
		names = append(names, n)
	}
	for n := range r.histograms {
		names = append(names, n)
	}
	for n := range r.ratios {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Snapshot freezes the current registry state.
func (r *Registry) Snapshot() Snapshot {
	r.mu.Lock()
	defer r.mu.Unlock()
	s := Snapshot{
		Counters:    make(map[string]int64, len(r.counters)),
		Durations:   make(map[string]time.Duration, len(r.durations)),
		Gauges:      make(map[string]int64, len(r.gauges)),
		FloatGauges: make(map[string]float64, len(r.floatGauges)),
		Histograms:  make(map[string]HistogramSnapshot, len(r.histograms)),
		Ratios:      make(map[string]RatioSnapshot, len(r.ratios)),
	}
	for name, c := range r.counters {
		s.Counters[name] = c.Load()
	}
	for name, d := range r.durations {
		s.Durations[name] = d.Load()
	}
	for name, g := range r.gauges {
		s.Gauges[name] = g.Load()
	}
	for name, g := range r.floatGauges {
		s.FloatGauges[name] = g.Load()
	}
	for name, h := range r.histograms {
		hs := HistogramSnapshot{Count: h.Count(), Sum: h.Sum(), Buckets: make([]int64, histBuckets)}
		for i := range h.buckets {
			hs.Buckets[i] = h.buckets[i].Load()
		}
		s.Histograms[name] = hs
	}
	for name, h := range r.ratios {
		rs := RatioSnapshot{Count: h.Count(), Sum: h.Sum(), Buckets: make([]int64, histBuckets)}
		for i := range h.buckets {
			rs.Buckets[i] = h.buckets[i].Load()
		}
		s.Ratios[name] = rs
	}
	return s
}
