package trace

import (
	"sync"
	"time"
)

// Span is one traced interval of virtual time: an operator execution attempt
// or a whole query. All timestamps are simulator time — the tracer never
// reads the wall clock, so traces replay bit-for-bit from a seed.
type Span struct {
	// Query is the query id the span belongs to ("q0001"). Query-level spans
	// carry their own id here too.
	Query string
	// Name is the unique span name ("q0001/op003"; query spans use the query
	// id).
	Name string
	// Op is the operator name ("join(lo_custkey=c_custkey)"); empty for
	// query-level spans.
	Op string
	// Class is the operator's cost class ("selection", "join", …); "query"
	// for query-level spans.
	Class string
	// Proc is the processor the attempt ran on ("cpu" or "gpu"); empty for
	// query-level spans.
	Proc string
	// Node is the plan node id; -1 for query-level spans.
	Node int
	// Start and End bound the span in virtual time.
	Start, End time.Duration
	// QueueWait is the virtual time the operator spent waiting for a worker
	// slot in the operator stream (query chopping's thread-pool bound).
	QueueWait time.Duration
	// Transfer is the virtual bus time spent moving this attempt's inputs
	// and results.
	Transfer time.Duration
	// Abort classifies why the attempt gave up: "" (completed), "oom"
	// (device heap full), "fault" (injected transient fault), "reset"
	// (device reset mid-run), "error" (query-logic error), or "failed" on a
	// query span whose query ended with an error.
	Abort string
	// Attempt is the 0-based attempt number of the operator (retries and the
	// CPU fallback increment it).
	Attempt int
	// HeapHighWater is the attempt's peak device-heap reservation in bytes
	// (0 for CPU runs and query spans).
	HeapHighWater int64
	// KernelWorkers is the intra-operator worker bound the attempt's kernels
	// ran under (0 when the engine executed kernels serially, and for query
	// spans).
	KernelWorkers int
	// MorselCount is the number of morsels the attempt's kernels fanned out
	// (0 in serial mode: the serial paths dispatch no morsels).
	MorselCount int64
	// Tenant is the submitting tenant when the query arrived through the
	// network front door; empty for benchmark-driven runs.
	Tenant string
	// Rows is the actual output row count of a completed operator attempt
	// (0 for aborted attempts and query-level spans). Together with
	// OutBytes it is the "actual" side of EXPLAIN ANALYZE's
	// estimate-vs-actual comparison.
	Rows int64
	// OutBytes is the actual output byte footprint of a completed attempt
	// (0 for aborted attempts and query-level spans).
	OutBytes int64
	// DecompressBytes is the number of bytes materialized by decoding
	// compressed columns during the attempt's kernel (best-effort: the
	// decode meter is process-wide, so concurrent engines in one process
	// may cross-attribute; within one engine the attribution is exact).
	DecompressBytes int64
	// Compression lists the compressed encodings ("bitpack", "rle",
	// "bitpack+rle") of the base columns the operator scanned; empty when
	// the operator read no compressed base columns, so traces from
	// uncompressed databases keep the earlier format byte-identical.
	Compression string
	// PipelineDepth is the buffered-chunk bound of a pipelined operator
	// attempt (0 for serial attempts, chunk-stage spans, and query spans, so
	// non-pipelined traces keep the earlier format byte-identical).
	PipelineDepth int
	// ChunkCount is the number of chunks a pipelined attempt executed.
	ChunkCount int64
	// CPUChunks is how many of those chunks the co-execution policy ran on
	// the CPU pool.
	CPUChunks int64
	// Overlap is the fraction of the ideal serial stage time hidden by
	// transfer/compute overlap: on pipelined operator attempts the attempt's
	// own ratio, on query spans the query-wide ratio (0 without pipelining).
	Overlap float64
}

// Duration returns the span length.
func (s Span) Duration() time.Duration { return s.End - s.Start }

// Event is one traced point decision: a cache admission/eviction/pin, a
// placement choice, or a device reset.
type Event struct {
	// At is the virtual timestamp.
	At time.Duration
	// Kind is the decision class: "admit", "evict", "pin", "unpin", "place",
	// "reset".
	Kind string
	// Subject is what was decided about — a column id for cache events, an
	// operator name for placement events.
	Subject string
	// Reason is the decision's cause ("operator-demand", "algorithm1",
	// "replacement", "breaker-open", …).
	Reason string
}

// Tracer collects spans and events into preallocated ring buffers. A nil
// *Tracer is the disabled tracer: every method is a nil-check no-op, so the
// tracing-disabled path costs no allocations and no locks. The ring bounds
// memory on long runs — when it wraps, the oldest entries are dropped and
// counted.
type Tracer struct {
	mu            sync.Mutex
	spans         []Span
	spanNext      int
	spanCount     int
	spansDropped  int64
	events        []Event
	eventNext     int
	eventCount    int
	eventsDropped int64
}

// DefaultCapacity is the default ring size (spans and events each).
const DefaultCapacity = 1 << 16

// New creates a tracer whose span and event rings hold capacity entries
// each; capacity <= 0 uses DefaultCapacity.
func New(capacity int) *Tracer {
	if capacity <= 0 {
		capacity = DefaultCapacity
	}
	return &Tracer{
		spans:  make([]Span, capacity),
		events: make([]Event, capacity),
	}
}

// Span records one span. Safe on a nil tracer (no-op).
func (t *Tracer) Span(s Span) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.spans[t.spanNext] = s
	t.spanNext = (t.spanNext + 1) % len(t.spans)
	if t.spanCount < len(t.spans) {
		t.spanCount++
	} else {
		t.spansDropped++
	}
	t.mu.Unlock()
}

// Event records one event. Safe on a nil tracer (no-op).
func (t *Tracer) Event(ev Event) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.events[t.eventNext] = ev
	t.eventNext = (t.eventNext + 1) % len(t.events)
	if t.eventCount < len(t.events) {
		t.eventCount++
	} else {
		t.eventsDropped++
	}
	t.mu.Unlock()
}

// Enabled reports whether the tracer records anything. Callers use it to
// skip building span inputs (string formatting) when tracing is off.
func (t *Tracer) Enabled() bool { return t != nil }

// Spans returns the recorded spans in emission order (oldest first). Safe on
// a nil tracer (returns nil).
func (t *Tracer) Spans() []Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]Span, 0, t.spanCount)
	start := 0
	if t.spanCount == len(t.spans) {
		start = t.spanNext
	}
	for i := 0; i < t.spanCount; i++ {
		out = append(out, t.spans[(start+i)%len(t.spans)])
	}
	return out
}

// Events returns the recorded events in emission order (oldest first). Safe
// on a nil tracer (returns nil).
func (t *Tracer) Events() []Event {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]Event, 0, t.eventCount)
	start := 0
	if t.eventCount == len(t.events) {
		start = t.eventNext
	}
	for i := 0; i < t.eventCount; i++ {
		out = append(out, t.events[(start+i)%len(t.events)])
	}
	return out
}

// SpansFor returns the recorded spans of one query in emission order. It is
// the EXPLAIN ANALYZE correlation read: cheaper than Spans() when one query
// is wanted, because only matching spans are copied out. Safe on a nil
// tracer (returns nil).
func (t *Tracer) SpansFor(query string) []Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	var out []Span
	start := 0
	if t.spanCount == len(t.spans) {
		start = t.spanNext
	}
	for i := 0; i < t.spanCount; i++ {
		s := t.spans[(start+i)%len(t.spans)]
		if s.Query == query {
			out = append(out, s)
		}
	}
	return out
}

// Dropped returns how many spans and events the rings overwrote.
func (t *Tracer) Dropped() (spans, events int64) {
	if t == nil {
		return 0, 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.spansDropped, t.eventsDropped
}

// Reset clears the rings for reuse between runs.
func (t *Tracer) Reset() {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.spanNext, t.spanCount, t.spansDropped = 0, 0, 0
	t.eventNext, t.eventCount, t.eventsDropped = 0, 0, 0
	t.mu.Unlock()
}
