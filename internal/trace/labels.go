package trace

import (
	"strings"
	"sync"
)

// Labeled registry series.
//
// The registry itself is name-keyed and label-agnostic: a labeled series is
// just a series whose name carries a Prometheus-style label suffix,
// `Base{k="v",k2="v2"}`, composed with LabeledName. The Prometheus exporter
// (internal/obs) splits the suffix back apart and groups every series of one
// base name under a single metric family. Registration stays idempotent per
// full key, so hot paths may call Registry.Histogram(LabeledName(...)) per
// observation — after the first call it is one map lookup under the registry
// lock.

// LabeledName composes a registry key carrying label pairs:
// LabeledName("TenantQueryLatency", "tenant", "t1", "outcome", "ok") →
// `TenantQueryLatency{outcome="ok",tenant="t1"}`. Pairs are sorted by label
// key so every call order yields the same series. Values must already be
// sanitized (SanitizeLabelValue / LabelPool) — this function only composes.
func LabeledName(base string, kv ...string) string {
	if len(kv) < 2 {
		return base
	}
	type pair struct{ k, v string }
	pairs := make([]pair, 0, len(kv)/2)
	for i := 0; i+1 < len(kv); i += 2 {
		pairs = append(pairs, pair{kv[i], kv[i+1]})
	}
	for i := 1; i < len(pairs); i++ { // insertion sort: label sets are tiny
		for j := i; j > 0 && pairs[j].k < pairs[j-1].k; j-- {
			pairs[j], pairs[j-1] = pairs[j-1], pairs[j]
		}
	}
	var b strings.Builder
	b.Grow(len(base) + 16*len(pairs))
	b.WriteString(base)
	b.WriteByte('{')
	for i, p := range pairs {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(p.k)
		b.WriteString(`="`)
		b.WriteString(p.v)
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

// SplitLabeledName splits a registry key back into base name and raw label
// suffix (without braces); labels is "" for unlabeled keys.
func SplitLabeledName(name string) (base, labels string) {
	i := strings.IndexByte(name, '{')
	if i < 0 || !strings.HasSuffix(name, "}") {
		return name, ""
	}
	return name[:i], name[i+1 : len(name)-1]
}

// SanitizeLabelValue maps an arbitrary (possibly client-supplied) string
// into a safe label value: letters, digits, '_', '-', '.' pass through,
// everything else becomes '_'. Empty input becomes "_".
func SanitizeLabelValue(v string) string {
	if v == "" {
		return "_"
	}
	var b strings.Builder
	b.Grow(len(v))
	for _, r := range v {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9',
			r == '_', r == '-', r == '.':
			b.WriteRune(r)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

// LabelPool bounds the cardinality of one client-controlled label: the first
// max distinct raw values map to their sanitized forms, every later value
// maps to "other". Without the bound, a tenant id is a client-supplied
// string and each new value mints a registry series — an unbounded-memory
// vector on a public front door.
type LabelPool struct {
	mu   sync.Mutex
	max  int
	seen map[string]string
}

// NewLabelPool builds a pool admitting up to max distinct values (max <= 0
// defaults to 16).
func NewLabelPool(max int) *LabelPool {
	if max <= 0 {
		max = 16
	}
	return &LabelPool{max: max, seen: make(map[string]string, max)}
}

// Get returns the bounded sanitized label value for raw.
func (p *LabelPool) Get(raw string) string {
	p.mu.Lock()
	defer p.mu.Unlock()
	if v, ok := p.seen[raw]; ok {
		return v
	}
	if len(p.seen) >= p.max {
		return "other"
	}
	v := SanitizeLabelValue(raw)
	p.seen[raw] = v
	return v
}
