package plan

import (
	"strings"
	"testing"

	"robustdb/internal/column"
	"robustdb/internal/cost"
	"robustdb/internal/engine"
	"robustdb/internal/expr"
)

// Late materialization: two positional selections, intersection, fetch —
// the pipeline shape of the paper's Appendix B.2 — must equal the direct
// conjunctive scan.
func TestPositionalPipelineMatchesDirectScan(t *testing.T) {
	cat := testCatalog()
	s1 := Scan("fact", nil, expr.NewCmp("qty", expr.GE, 20))
	s2 := Scan("fact", nil, expr.NewCmp("fk", expr.LE, 2))
	both := Intersect(s1, s2, "fact")
	fetch := Fetch(both, "fact", "fk", "qty", "price")
	p := New(fetch)

	var eval func(n *Node) *engine.Batch
	eval = func(n *Node) *engine.Batch {
		var inputs []*engine.Batch
		for _, c := range n.Children {
			inputs = append(inputs, eval(c))
		}
		out, err := n.Op.Execute(nil, cat, inputs)
		if err != nil {
			t.Fatalf("%s: %v", n.Op.Name(), err)
		}
		return out
	}
	got := eval(p.Root)

	direct, err := Scan("fact", []string{"fk", "qty", "price"}, expr.NewAnd(
		expr.NewCmp("qty", expr.GE, 20),
		expr.NewCmp("fk", expr.LE, 2),
	)).Op.Execute(nil, cat, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got.NumRows() != direct.NumRows() {
		t.Fatalf("pipeline %d rows, direct %d", got.NumRows(), direct.NumRows())
	}
	g := got.MustColumn("qty").(*column.Int64Column).Values
	d := direct.MustColumn("qty").(*column.Int64Column).Values
	for i := range g {
		if g[i] != d[i] {
			t.Fatalf("row %d: pipeline %d, direct %d", i, g[i], d[i])
		}
	}
}

func TestFetchMetadata(t *testing.T) {
	n := Fetch(Scan("fact", nil, nil), "fact", "qty", "price")
	if n.Op.Class() != cost.Materialize {
		t.Fatal("fetch class wrong")
	}
	if !strings.Contains(n.Op.Name(), "fetch(fact") {
		t.Fatalf("Name = %q", n.Op.Name())
	}
	cols := n.Op.BaseColumns()
	if len(cols) != 2 || cols[0] != "fact.qty" || cols[1] != "fact.price" {
		t.Fatalf("BaseColumns = %v", cols)
	}
	i := Intersect(nil, nil, "fact")
	if i.Op.Class() != cost.Selection || i.Op.BaseColumns() != nil {
		t.Fatal("intersect metadata wrong")
	}
	if !strings.Contains(i.Op.Name(), "intersect(fact)") {
		t.Fatalf("Name = %q", i.Op.Name())
	}
}

func TestFetchErrors(t *testing.T) {
	cat := testCatalog()
	rowids := engine.MustNewBatch(column.NewInt64("fact.rowid", []int64{0, 1}))
	op := &FetchOp{Table: "fact", Cols: []string{"qty"}}
	if _, err := op.Execute(nil, cat, nil); err == nil {
		t.Fatal("expected arity error")
	}
	if _, err := (&FetchOp{Table: "missing", Cols: []string{"x"}}).Execute(nil, cat,
		[]*engine.Batch{rowids}); err == nil {
		t.Fatal("expected unknown-table error")
	}
	noRowid := engine.MustNewBatch(column.NewInt64("other", []int64{0}))
	if _, err := op.Execute(nil, cat, []*engine.Batch{noRowid}); err == nil {
		t.Fatal("expected missing-rowid error")
	}
	wrongType := engine.MustNewBatch(column.NewFloat64("fact.rowid", []float64{0}))
	if _, err := op.Execute(nil, cat, []*engine.Batch{wrongType}); err == nil {
		t.Fatal("expected rowid-type error")
	}
	outOfRange := engine.MustNewBatch(column.NewInt64("fact.rowid", []int64{99999}))
	if _, err := op.Execute(nil, cat, []*engine.Batch{outOfRange}); err == nil {
		t.Fatal("expected out-of-range error")
	}
	badCol := &FetchOp{Table: "fact", Cols: []string{"zz"}}
	if _, err := badCol.Execute(nil, cat, []*engine.Batch{rowids}); err == nil {
		t.Fatal("expected unknown-column error")
	}
}

func TestIntersectErrors(t *testing.T) {
	cat := testCatalog()
	a := engine.MustNewBatch(column.NewInt64("fact.rowid", []int64{0, 1}))
	op := &IntersectOp{Table: "fact"}
	if _, err := op.Execute(nil, cat, []*engine.Batch{a}); err == nil {
		t.Fatal("expected arity error")
	}
	noRowid := engine.MustNewBatch(column.NewInt64("other", []int64{0}))
	if _, err := op.Execute(nil, cat, []*engine.Batch{a, noRowid}); err == nil {
		t.Fatal("expected missing-rowid error")
	}
	wrongType := engine.MustNewBatch(column.NewFloat64("fact.rowid", []float64{0}))
	if _, err := op.Execute(nil, cat, []*engine.Batch{a, wrongType}); err == nil {
		t.Fatal("expected rowid-type error")
	}
}

func TestScanOverCompressedColumns(t *testing.T) {
	cat := testCatalog().Compressed()
	// Predicate + gather over compressed base columns must match the raw run.
	raw, err := Scan("fact", []string{"fk", "qty"}, expr.NewCmp("qty", expr.GE, 30)).
		Op.Execute(nil, testCatalog(), nil)
	if err != nil {
		t.Fatal(err)
	}
	comp, err := Scan("fact", []string{"fk", "qty"}, expr.NewCmp("qty", expr.GE, 30)).
		Op.Execute(nil, cat, nil)
	if err != nil {
		t.Fatal(err)
	}
	if raw.NumRows() != comp.NumRows() {
		t.Fatalf("rows: raw %d comp %d", raw.NumRows(), comp.NumRows())
	}
	// Late materialization: the gathered column keeps its stored encoding.
	if enc := column.Encoding(comp.MustColumn("fk")); enc != "bitpack" {
		t.Fatalf("compressed scan materialized fk to %q", enc)
	}
	r := raw.MustColumn("fk").(*column.Int64Column).Values
	c := column.Materialized(comp.MustColumn("fk")).(*column.Int64Column).Values
	for i := range r {
		if r[i] != c[i] {
			t.Fatalf("row %d: raw %d comp %d", i, r[i], c[i])
		}
	}
}
