package plan

import (
	"sort"
	"strings"
	"time"

	"robustdb/internal/column"
	"robustdb/internal/cost"
	"robustdb/internal/table"
	"robustdb/internal/trace"
)

// ExplainVersion is the schema version of the EXPLAIN payload. Bump it when
// field meanings change so downstream consumers (CI smoke, dashboards) can
// detect drift instead of misreading.
const ExplainVersion = 1

// ExplainColumn is one base column a node reads, with its stored encoding.
type ExplainColumn struct {
	Name     string `json:"name"`
	Encoding string `json:"encoding"` // plain | dict | bitpack | rle
	Bytes    int64  `json:"bytes"`
}

// ExplainNode is the JSON rendering of one plan node. Children appear in
// execution order (build side first for joins).
type ExplainNode struct {
	ID        int    `json:"id"`
	Kind      string `json:"kind"`
	Op        string `json:"op"`
	Class     string `json:"class"`
	Table     string `json:"table,omitempty"`
	Predicate string `json:"predicate,omitempty"`
	BuildSide string `json:"build_side,omitempty"`

	// Compression summarizes the stored encodings of the node's base
	// columns ("plain", "bitpack", "bitpack+dict", ...). Always present on
	// nodes that read base columns (scan, fetch); empty elsewhere.
	Compression string          `json:"compression,omitempty"`
	Columns     []ExplainColumn `json:"columns,omitempty"`

	EstRows     int64 `json:"est_rows"`
	EstInBytes  int64 `json:"est_in_bytes"`
	EstOutBytes int64 `json:"est_out_bytes"`

	// Placement is the compile-time processor decision ("cpu"/"gpu"), or
	// "runtime" when the strategy defers per-operator decisions to run time.
	Placement string `json:"placement"`

	// Analyze carries the node's execution actuals when the payload was
	// produced by EXPLAIN ANALYZE (AttachActuals); nil for plain EXPLAIN, so
	// pre-ANALYZE documents are byte-identical.
	Analyze *ExplainAnalyze `json:"analyze,omitempty"`

	Children []*ExplainNode `json:"children,omitempty"`
}

// ExplainAnalyze is the per-node actuals section of EXPLAIN ANALYZE,
// populated by correlating exec spans back to plan nodes by node id.
// Durations are virtual microseconds (integral and lossless at simulator
// resolution) summed across all attempts; rows/bytes come from the completed
// attempt only, so retries never double-count output.
type ExplainAnalyze struct {
	// Status is "ok" (a completed attempt was found), "partial" (the node
	// ran but every attempt aborted — durations are real, rows/bytes are
	// not), or "missing" (no span reached the tracer: the query was shed or
	// failed before this node started).
	Status string `json:"status"`
	// Processor is where the final attempt ran ("cpu"/"gpu"); empty when
	// status is "missing".
	Processor string `json:"processor,omitempty"`
	// Attempts counts execution attempts including retries and the CPU
	// fallback; 0 when status is "missing".
	Attempts int `json:"attempts"`
	// ActualRows and ActualBytes are the completed attempt's output; 0 when
	// no attempt completed (status != "ok" — flagged, not fabricated).
	ActualRows  int64 `json:"actual_rows"`
	ActualBytes int64 `json:"actual_bytes"`
	// WallUS, QueueWaitUS, and TransferUS sum across all attempts.
	WallUS      int64 `json:"wall_us"`
	QueueWaitUS int64 `json:"queue_wait_us"`
	TransferUS  int64 `json:"transfer_us"`
	// DecompressBytes is the volume materialized by decoding compressed
	// columns during the node's kernels, summed across attempts.
	DecompressBytes int64 `json:"decompress_bytes,omitempty"`
	// Pipeline fields come from the completed attempt of a node the engine
	// ran through the pipelined chunk executor; all omitted on serial nodes,
	// so pre-pipeline documents are byte-identical.
	PipelineDepth  int     `json:"pipeline_depth,omitempty"`
	PipelineChunks int64   `json:"pipeline_chunks,omitempty"`
	CPUChunks      int64   `json:"pipeline_cpu_chunks,omitempty"`
	OverlapPct     float64 `json:"overlap_pct,omitempty"`
}

// ExplainExec is the query-level execution summary of an EXPLAIN ANALYZE
// payload, drawn from the query span and the per-node actuals.
type ExplainExec struct {
	// QueryID is the engine's query id ("q0001") — the span correlation key.
	QueryID string `json:"query_id"`
	// Outcome is "ok" or the query span's abort class ("failed", ...).
	Outcome   string `json:"outcome"`
	LatencyUS int64  `json:"latency_us"`
	Tenant    string `json:"tenant,omitempty"`
	// QError is the worst per-node cardinality misestimate:
	// max(est/actual, actual/est) over nodes with both sides known. 0 when
	// no node had both.
	QError float64 `json:"q_error,omitempty"`
}

// ExplainPayload is the versioned EXPLAIN document served over /v1/explain
// and printed by the CLI.
type ExplainPayload struct {
	Version int    `json:"version"`
	SQL     string `json:"sql,omitempty"`
	Text    string `json:"text"`
	// Exec is the query-level execution summary; present only on EXPLAIN
	// ANALYZE payloads (AttachActuals).
	Exec *ExplainExec `json:"exec,omitempty"`
	Root *ExplainNode `json:"root"`
}

// Explain renders the plan as a JSON-serializable node tree. Plans not yet
// estimated get their compile-time estimates filled (mutating the plan's Est
// fields); already-estimated plans — e.g. cached plans shared across
// concurrent requests, estimated once at insert — are read without mutation.
// placement maps node id → processor for compile-time strategies; nil means
// every decision is deferred to run time.
func Explain(p *Plan, cat *table.Catalog, placement map[int]cost.ProcKind) (*ExplainPayload, error) {
	if !p.estimated {
		if err := p.EstimateSizes(cat); err != nil {
			return nil, err
		}
	}
	var build func(n *Node) (*ExplainNode, error)
	build = func(n *Node) (*ExplainNode, error) {
		en := &ExplainNode{
			ID:          n.ID(),
			Op:          n.Op.Name(),
			Class:       n.Op.Class().String(),
			EstRows:     n.EstRows,
			EstInBytes:  n.EstInBytes,
			EstOutBytes: n.EstOutBytes,
			Placement:   "runtime",
		}
		if placement != nil {
			if kind, ok := placement[n.ID()]; ok {
				en.Placement = kind.String()
			}
		}
		describeOp(n.Op, en)
		if err := explainBaseColumns(n.Op, cat, en); err != nil {
			return nil, err
		}
		for _, c := range n.Children {
			ce, err := build(c)
			if err != nil {
				return nil, err
			}
			en.Children = append(en.Children, ce)
		}
		return en, nil
	}
	root, err := build(p.Root)
	if err != nil {
		return nil, err
	}
	return &ExplainPayload{Version: ExplainVersion, Text: p.String(), Root: root}, nil
}

// describeOp fills the operator-specific fields (kind, table, predicate,
// build side) from the concrete operator type.
func describeOp(op Operator, en *ExplainNode) {
	switch o := op.(type) {
	case *ScanOp:
		en.Kind = "scan"
		en.Table = o.Table
		if o.Pred != nil {
			en.Predicate = o.Pred.String()
		}
	case *FilterOp:
		en.Kind = "filter"
		en.Predicate = o.Pred.String()
	case *ProjectOp:
		en.Kind = "project"
	case *ComputeOp:
		en.Kind = "compute"
	case *JoinOp:
		en.Kind = "join"
		en.BuildSide = "left(" + o.LeftKey + ")"
	case *SemiJoinOp:
		en.Kind = "semijoin"
		en.BuildSide = "build(" + o.BuildKey + ")"
	case *AggregateOp:
		en.Kind = "aggregate"
	case *SortOp:
		en.Kind = "sort"
	case *FetchOp:
		en.Kind = "fetch"
		en.Table = o.Table
	case *IntersectOp:
		en.Kind = "intersect"
		en.Table = o.Table
	default:
		en.Kind = op.Class().String()
	}
}

// explainBaseColumns resolves the node's base columns against the catalog
// and summarizes their encodings. Nodes that read base columns always get a
// non-empty Compression, so consumers can rely on the field's presence.
func explainBaseColumns(op Operator, cat *table.Catalog, en *ExplainNode) error {
	ids := op.BaseColumns()
	if len(ids) == 0 {
		return nil
	}
	encodings := make(map[string]bool)
	for _, id := range ids {
		c, err := cat.Column(id)
		if err != nil {
			return err
		}
		enc := column.Encoding(c)
		encodings[enc] = true
		en.Columns = append(en.Columns, ExplainColumn{
			Name:     string(id),
			Encoding: enc,
			Bytes:    c.Bytes(),
		})
	}
	modes := make([]string, 0, len(encodings))
	for m := range encodings {
		modes = append(modes, m)
	}
	sort.Strings(modes)
	en.Compression = strings.Join(modes, "+")
	return nil
}

// AttachActuals upgrades a plain EXPLAIN payload to EXPLAIN ANALYZE by
// correlating the query's exec spans back to plan nodes: every node gains an
// Analyze section (status "missing" when no span reached it — shed queries
// and nodes past a mid-plan failure report missing, never fabricated zeros),
// and the payload gains an Exec summary from the query-level span. spans is
// the output of Tracer.SpansFor(queryID); outcome overrides the span-derived
// outcome when non-empty (the server knows shed/deadline classifications the
// engine cannot see).
func AttachActuals(payload *ExplainPayload, queryID string, spans []trace.Span, outcome string) {
	exec := &ExplainExec{QueryID: queryID, Outcome: "ok"}
	byNode := make(map[int][]trace.Span, len(spans))
	for _, s := range spans {
		if s.Class == "query" {
			exec.LatencyUS = int64(s.Duration() / time.Microsecond)
			exec.Tenant = s.Tenant
			if s.Abort != "" {
				exec.Outcome = s.Abort
			}
			continue
		}
		if s.Class == "chunk" {
			// Pipeline-stage spans are sub-attempt detail: counting them as
			// attempts would corrupt the retry accounting. The attempt span of
			// the pipelined operator already aggregates them.
			continue
		}
		byNode[s.Node] = append(byNode[s.Node], s)
	}
	if outcome != "" {
		exec.Outcome = outcome
	}

	var walk func(en *ExplainNode)
	walk = func(en *ExplainNode) {
		en.Analyze = analyzeNode(byNode[en.ID])
		if a := en.Analyze; a.Status == "ok" && en.EstRows > 0 && a.ActualRows > 0 {
			q := float64(en.EstRows) / float64(a.ActualRows)
			if q < 1 {
				q = 1 / q
			}
			if q > exec.QError {
				exec.QError = q
			}
		}
		for _, c := range en.Children {
			walk(c)
		}
	}
	if payload.Root != nil {
		walk(payload.Root)
	}
	payload.Exec = exec
}

// analyzeNode folds one node's attempt spans into its Analyze section.
func analyzeNode(spans []trace.Span) *ExplainAnalyze {
	a := &ExplainAnalyze{Status: "missing"}
	final := -1
	for _, s := range spans {
		a.Attempts++
		a.WallUS += int64(s.Duration() / time.Microsecond)
		a.QueueWaitUS += int64(s.QueueWait / time.Microsecond)
		a.TransferUS += int64(s.Transfer / time.Microsecond)
		a.DecompressBytes += s.DecompressBytes
		if s.Attempt >= final {
			final = s.Attempt
			a.Processor = s.Proc
		}
		if s.Abort == "" {
			a.Status = "ok"
			a.ActualRows = s.Rows
			a.ActualBytes = s.OutBytes
			if s.ChunkCount > 0 {
				a.PipelineDepth = s.PipelineDepth
				a.PipelineChunks = s.ChunkCount
				a.CPUChunks = s.CPUChunks
				a.OverlapPct = s.Overlap * 100
			}
		} else if a.Status == "missing" {
			a.Status = "partial"
		}
	}
	return a
}
