package plan

import (
	"sort"
	"strings"

	"robustdb/internal/column"
	"robustdb/internal/cost"
	"robustdb/internal/table"
)

// ExplainVersion is the schema version of the EXPLAIN payload. Bump it when
// field meanings change so downstream consumers (CI smoke, dashboards) can
// detect drift instead of misreading.
const ExplainVersion = 1

// ExplainColumn is one base column a node reads, with its stored encoding.
type ExplainColumn struct {
	Name     string `json:"name"`
	Encoding string `json:"encoding"` // plain | dict | bitpack | rle
	Bytes    int64  `json:"bytes"`
}

// ExplainNode is the JSON rendering of one plan node. Children appear in
// execution order (build side first for joins).
type ExplainNode struct {
	ID        int    `json:"id"`
	Kind      string `json:"kind"`
	Op        string `json:"op"`
	Class     string `json:"class"`
	Table     string `json:"table,omitempty"`
	Predicate string `json:"predicate,omitempty"`
	BuildSide string `json:"build_side,omitempty"`

	// Compression summarizes the stored encodings of the node's base
	// columns ("plain", "bitpack", "bitpack+dict", ...). Always present on
	// nodes that read base columns (scan, fetch); empty elsewhere.
	Compression string          `json:"compression,omitempty"`
	Columns     []ExplainColumn `json:"columns,omitempty"`

	EstRows     int64 `json:"est_rows"`
	EstInBytes  int64 `json:"est_in_bytes"`
	EstOutBytes int64 `json:"est_out_bytes"`

	// Placement is the compile-time processor decision ("cpu"/"gpu"), or
	// "runtime" when the strategy defers per-operator decisions to run time.
	Placement string `json:"placement"`

	Children []*ExplainNode `json:"children,omitempty"`
}

// ExplainPayload is the versioned EXPLAIN document served over /v1/explain
// and printed by the CLI.
type ExplainPayload struct {
	Version int          `json:"version"`
	SQL     string       `json:"sql,omitempty"`
	Text    string       `json:"text"`
	Root    *ExplainNode `json:"root"`
}

// Explain renders the plan as a JSON-serializable node tree. It fills the
// compile-time size estimates (mutating the plan's Est fields), so callers
// that share plans across requests should pass a freshly compiled plan.
// placement maps node id → processor for compile-time strategies; nil means
// every decision is deferred to run time.
func Explain(p *Plan, cat *table.Catalog, placement map[int]cost.ProcKind) (*ExplainPayload, error) {
	if err := p.EstimateSizes(cat); err != nil {
		return nil, err
	}
	var build func(n *Node) (*ExplainNode, error)
	build = func(n *Node) (*ExplainNode, error) {
		en := &ExplainNode{
			ID:          n.ID(),
			Op:          n.Op.Name(),
			Class:       n.Op.Class().String(),
			EstInBytes:  n.EstInBytes,
			EstOutBytes: n.EstOutBytes,
			Placement:   "runtime",
		}
		if placement != nil {
			if kind, ok := placement[n.ID()]; ok {
				en.Placement = kind.String()
			}
		}
		describeOp(n.Op, en)
		if err := explainBaseColumns(n.Op, cat, en); err != nil {
			return nil, err
		}
		for _, c := range n.Children {
			ce, err := build(c)
			if err != nil {
				return nil, err
			}
			en.Children = append(en.Children, ce)
		}
		en.EstRows = estRows(n, en, cat)
		return en, nil
	}
	root, err := build(p.Root)
	if err != nil {
		return nil, err
	}
	return &ExplainPayload{Version: ExplainVersion, Text: p.String(), Root: root}, nil
}

// describeOp fills the operator-specific fields (kind, table, predicate,
// build side) from the concrete operator type.
func describeOp(op Operator, en *ExplainNode) {
	switch o := op.(type) {
	case *ScanOp:
		en.Kind = "scan"
		en.Table = o.Table
		if o.Pred != nil {
			en.Predicate = o.Pred.String()
		}
	case *FilterOp:
		en.Kind = "filter"
		en.Predicate = o.Pred.String()
	case *ProjectOp:
		en.Kind = "project"
	case *ComputeOp:
		en.Kind = "compute"
	case *JoinOp:
		en.Kind = "join"
		en.BuildSide = "left(" + o.LeftKey + ")"
	case *SemiJoinOp:
		en.Kind = "semijoin"
		en.BuildSide = "build(" + o.BuildKey + ")"
	case *AggregateOp:
		en.Kind = "aggregate"
	case *SortOp:
		en.Kind = "sort"
	case *FetchOp:
		en.Kind = "fetch"
		en.Table = o.Table
	case *IntersectOp:
		en.Kind = "intersect"
		en.Table = o.Table
	default:
		en.Kind = op.Class().String()
	}
}

// explainBaseColumns resolves the node's base columns against the catalog
// and summarizes their encodings. Nodes that read base columns always get a
// non-empty Compression, so consumers can rely on the field's presence.
func explainBaseColumns(op Operator, cat *table.Catalog, en *ExplainNode) error {
	ids := op.BaseColumns()
	if len(ids) == 0 {
		return nil
	}
	encodings := make(map[string]bool)
	for _, id := range ids {
		c, err := cat.Column(id)
		if err != nil {
			return err
		}
		enc := column.Encoding(c)
		encodings[enc] = true
		en.Columns = append(en.Columns, ExplainColumn{
			Name:     string(id),
			Encoding: enc,
			Bytes:    c.Bytes(),
		})
	}
	modes := make([]string, 0, len(encodings))
	for m := range encodings {
		modes = append(modes, m)
	}
	sort.Strings(modes)
	en.Compression = strings.Join(modes, "+")
	return nil
}

// estRows estimates output cardinality with the same crude factors as
// EstimateSizes: scans start from exact catalog row counts, everything above
// propagates child estimates through per-class reduction factors. The paper's
// point (§4) is that such estimates are unreliable — EXPLAIN surfaces them so
// the unreliability is visible.
func estRows(n *Node, en *ExplainNode, cat *table.Catalog) int64 {
	clamp := func(r int64) int64 {
		if r < 1 {
			return 1
		}
		return r
	}
	if o, ok := n.Op.(*ScanOp); ok {
		rows := int64(0)
		if t, err := cat.Table(o.Table); err == nil {
			rows = int64(t.NumRows())
		}
		if o.Pred != nil {
			rows = int64(float64(rows) * estSelectivity)
		}
		return clamp(rows)
	}
	var childRows int64
	for _, c := range en.Children {
		if c.EstRows > childRows {
			childRows = c.EstRows
		}
	}
	switch n.Op.Class() {
	case cost.Selection:
		return clamp(int64(float64(childRows) * estSelectivity))
	case cost.Aggregation:
		return clamp(int64(float64(childRows) * estAggReduction))
	case cost.Join:
		if len(en.Children) == 2 {
			return clamp(int64(float64(en.Children[1].EstRows) * estJoinExpansion))
		}
		return clamp(childRows)
	default:
		if o, ok := n.Op.(*SortOp); ok && o.Limit > 0 && int64(o.Limit) < childRows {
			return clamp(int64(o.Limit))
		}
		return clamp(childRows)
	}
}
