package plan

import (
	"strings"
	"testing"

	"robustdb/internal/column"
	"robustdb/internal/cost"
	"robustdb/internal/engine"
)

func TestSemiJoinOp(t *testing.T) {
	cat := testCatalog()
	build := engine.MustNewBatch(column.NewInt64("k", []int64{2, 4}))
	probe := engine.MustNewBatch(
		column.NewInt64("k", []int64{1, 2, 3, 4}),
		column.NewInt64("v", []int64{10, 20, 30, 40}),
	)
	n := SemiJoin(nil, nil, "k", "k") // node structure unused in direct Execute
	out, err := n.Op.Execute(nil, cat, []*engine.Batch{build, probe})
	if err != nil {
		t.Fatal(err)
	}
	v := out.MustColumn("v").(*column.Int64Column).Values
	if len(v) != 2 || v[0] != 20 || v[1] != 40 {
		t.Fatalf("semi join values = %v", v)
	}
	if n.Op.Class() != cost.Join || n.Op.BaseColumns() != nil {
		t.Fatal("metadata wrong")
	}
	if !strings.Contains(n.Op.Name(), "semijoin") {
		t.Fatalf("Name = %q", n.Op.Name())
	}
	if _, err := n.Op.Execute(nil, cat, []*engine.Batch{build}); err == nil {
		t.Fatal("expected arity error")
	}
	if _, err := (&SemiJoinOp{BuildKey: "zz", ProbeKey: "k"}).Execute(nil, cat, []*engine.Batch{build, probe}); err == nil {
		t.Fatal("expected key error")
	}
}
