// Package plan defines physical query plans: trees of bulk operators in
// CoGaDB's operator-at-a-time model. Plans are built with the constructor
// functions (Scan, Join, Aggregate, ...) — the paper's SQL front end and
// Selinger-style strategic optimizer are orthogonal to its contribution, so
// the benchmark queries are expressed directly as physical plans.
package plan

import (
	"fmt"

	"robustdb/internal/cost"
	"robustdb/internal/engine"
	"robustdb/internal/table"
)

// Operator is one bulk operator: it consumes fully materialized inputs (one
// per child) and materializes its output.
type Operator interface {
	// Class returns the cost class of the operator.
	Class() cost.OpClass
	// Name returns a short human-readable description.
	Name() string
	// BaseColumns returns the base columns the operator reads directly from
	// the catalog (non-empty for leaf scans only). These drive caching and
	// data-driven placement.
	BaseColumns() []table.ColumnID
	// Execute runs the operator on real data. The kernel context selects the
	// worker pool intra-operator parallelism runs on; nil means serial, and
	// results are bit-identical at every worker count.
	Execute(ectx *engine.Ctx, cat *table.Catalog, inputs []*engine.Batch) (*engine.Batch, error)
}

// Node is one operator in a plan tree.
type Node struct {
	id       int
	Op       Operator
	Children []*Node

	// EstInBytes, EstOutBytes, and EstRows are the compile-time estimates
	// set by Plan.EstimateSizes; compile-time heuristics plan with them,
	// run-time placement ignores them (paper §4: exact cardinalities at run
	// time). EstRows is also the "estimate" side of EXPLAIN ANALYZE's
	// estimate-vs-actual comparison and the misestimation metrics.
	EstInBytes  int64
	EstOutBytes int64
	EstRows     int64
}

// ID returns the node's plan-unique id (post-order, root last).
func (n *Node) ID() int { return n.id }

// NewNode wires an operator to its children.
func NewNode(op Operator, children ...*Node) *Node {
	return &Node{Op: op, Children: children}
}

// Plan is a rooted operator tree with stable node ids.
type Plan struct {
	Root  *Node
	nodes []*Node

	// estimated records that EstimateSizes already ran, letting Explain skip
	// re-estimation. Plans cached and shared across concurrent requests are
	// estimated once at insert; re-estimating per request would race on the
	// shared Est fields.
	estimated bool
}

// New numbers the tree in post-order (children before parents, root last)
// and returns the plan.
func New(root *Node) *Plan {
	p := &Plan{Root: root}
	var walk func(n *Node)
	walk = func(n *Node) {
		for _, c := range n.Children {
			walk(c)
		}
		n.id = len(p.nodes)
		p.nodes = append(p.nodes, n)
	}
	walk(root)
	return p
}

// Nodes returns all nodes in post-order.
func (p *Plan) Nodes() []*Node { return p.nodes }

// Leaves returns the nodes without children, in post-order.
func (p *Plan) Leaves() []*Node {
	var out []*Node
	for _, n := range p.nodes {
		if len(n.Children) == 0 {
			out = append(out, n)
		}
	}
	return out
}

// Parent returns the parent of n in the plan (nil for the root).
func (p *Plan) Parent(n *Node) *Node {
	for _, cand := range p.nodes {
		for _, c := range cand.Children {
			if c == n {
				return cand
			}
		}
	}
	return nil
}

// BaseColumns returns the set of base columns the whole plan reads, in
// first-use order.
func (p *Plan) BaseColumns() []table.ColumnID {
	seen := make(map[table.ColumnID]bool)
	var out []table.ColumnID
	for _, n := range p.nodes {
		for _, id := range n.Op.BaseColumns() {
			if !seen[id] {
				seen[id] = true
				out = append(out, id)
			}
		}
	}
	return out
}

// String renders the plan as an indented tree.
func (p *Plan) String() string {
	var render func(n *Node, depth int) string
	render = func(n *Node, depth int) string {
		s := ""
		for i := 0; i < depth; i++ {
			s += "  "
		}
		s += fmt.Sprintf("#%d %s [%s]\n", n.id, n.Op.Name(), n.Op.Class())
		for _, c := range n.Children {
			s += render(c, depth+1)
		}
		return s
	}
	return render(p.Root, 0)
}

// Default compile-time selectivity and size factors. Deliberately crude:
// the paper's point about compile-time placement (§4) is precisely that such
// estimates are unreliable.
const (
	estSelectivity   = 0.2
	estAggReduction  = 0.05
	estJoinExpansion = 1.0
)

// EstimateSizes fills EstInBytes/EstOutBytes/EstRows bottom-up using base
// column sizes and row counts from the catalog and fixed selectivity guesses.
func (p *Plan) EstimateSizes(cat *table.Catalog) error {
	for _, n := range p.nodes { // post-order: children first
		var in int64
		for _, id := range n.Op.BaseColumns() {
			b, err := cat.ColumnBytes(id)
			if err != nil {
				return fmt.Errorf("plan estimate: %w", err)
			}
			in += b
		}
		for _, c := range n.Children {
			in += c.EstOutBytes
		}
		n.EstInBytes = in
		switch n.Op.Class() {
		case cost.Selection:
			n.EstOutBytes = int64(float64(in) * estSelectivity)
		case cost.Join:
			var probe int64
			if len(n.Children) == 2 {
				probe = n.Children[1].EstOutBytes
			} else {
				probe = in / 2
			}
			n.EstOutBytes = int64(float64(probe) * estJoinExpansion)
		case cost.Aggregation:
			n.EstOutBytes = int64(float64(in) * estAggReduction)
		default: // sort, materialize, compute preserve volume
			n.EstOutBytes = in
		}
		if n.EstOutBytes < 64 {
			n.EstOutBytes = 64
		}
		n.EstRows = estRows(n, cat)
	}
	p.estimated = true
	return nil
}

// estRows estimates output cardinality with the same crude factors as the
// byte estimates: scans start from exact catalog row counts, everything above
// propagates child estimates through per-class reduction factors. The paper's
// point (§4) is that such estimates are unreliable — EXPLAIN surfaces them,
// and the misestimation histograms measure them against actuals.
// Children are already estimated (post-order caller).
func estRows(n *Node, cat *table.Catalog) int64 {
	clamp := func(r int64) int64 {
		if r < 1 {
			return 1
		}
		return r
	}
	if o, ok := n.Op.(*ScanOp); ok {
		rows := int64(0)
		if t, err := cat.Table(o.Table); err == nil {
			rows = int64(t.NumRows())
		}
		if o.Pred != nil {
			rows = int64(float64(rows) * estSelectivity)
		}
		return clamp(rows)
	}
	var childRows int64
	for _, c := range n.Children {
		if c.EstRows > childRows {
			childRows = c.EstRows
		}
	}
	switch n.Op.Class() {
	case cost.Selection:
		return clamp(int64(float64(childRows) * estSelectivity))
	case cost.Aggregation:
		return clamp(int64(float64(childRows) * estAggReduction))
	case cost.Join:
		if len(n.Children) == 2 {
			return clamp(int64(float64(n.Children[1].EstRows) * estJoinExpansion))
		}
		return clamp(childRows)
	default:
		if o, ok := n.Op.(*SortOp); ok && o.Limit > 0 && int64(o.Limit) < childRows {
			return clamp(int64(o.Limit))
		}
		return clamp(childRows)
	}
}
