package plan

import (
	"strings"
	"testing"

	"robustdb/internal/column"
	"robustdb/internal/cost"
	"robustdb/internal/engine"
	"robustdb/internal/expr"
	"robustdb/internal/table"
)

func testCatalog() *table.Catalog {
	cat := table.NewCatalog()
	cat.MustRegister(table.MustNew("fact",
		column.NewInt64("fk", []int64{1, 2, 1, 3, 2}),
		column.NewInt64("qty", []int64{10, 20, 30, 40, 50}),
		column.NewFloat64("price", []float64{1, 2, 3, 4, 5}),
	))
	cat.MustRegister(table.MustNew("dim",
		column.NewInt64("dk", []int64{1, 2, 3}),
		column.NewString("name", []string{"a", "b", "c"}),
	))
	return cat
}

func starPlan() *Plan {
	dim := Scan("dim", []string{"dk", "name"}, expr.NewCmp("name", expr.NE, "c"))
	fact := Scan("fact", []string{"fk", "qty", "price"}, expr.NewCmp("qty", expr.GE, 20))
	j := Join(dim, fact, "dk", "fk", []string{"name"}, []string{"qty", "price"})
	c := Compute(j, "rev", "qty", engine.Mul, "price")
	a := Aggregate(c, []string{"name"}, []engine.AggSpec{{Func: engine.Sum, Col: "rev", As: "sum_rev"}})
	s := Sort(a, engine.SortKey{Col: "sum_rev", Desc: true})
	return New(s)
}

func TestPlanNumbering(t *testing.T) {
	p := starPlan()
	nodes := p.Nodes()
	if len(nodes) != 6 {
		t.Fatalf("nodes = %d, want 6", len(nodes))
	}
	// Post-order: root last.
	if nodes[len(nodes)-1] != p.Root {
		t.Fatal("root must be numbered last")
	}
	for i, n := range nodes {
		if n.ID() != i {
			t.Fatalf("node %d has id %d", i, n.ID())
		}
		for _, c := range n.Children {
			if c.ID() >= n.ID() {
				t.Fatal("children must be numbered before parents")
			}
		}
	}
}

func TestPlanLeavesAndParent(t *testing.T) {
	p := starPlan()
	leaves := p.Leaves()
	if len(leaves) != 2 {
		t.Fatalf("leaves = %d", len(leaves))
	}
	for _, l := range leaves {
		if _, ok := l.Op.(*ScanOp); !ok {
			t.Fatal("leaves should be scans")
		}
	}
	if p.Parent(p.Root) != nil {
		t.Fatal("root has no parent")
	}
	join := p.Root.Children[0].Children[0].Children[0]
	if p.Parent(leaves[0]) != join {
		t.Fatal("parent lookup wrong")
	}
}

func TestPlanBaseColumns(t *testing.T) {
	p := starPlan()
	cols := p.BaseColumns()
	want := map[table.ColumnID]bool{
		"dim.name": true, "dim.dk": true,
		"fact.qty": true, "fact.fk": true, "fact.price": true,
	}
	if len(cols) != len(want) {
		t.Fatalf("base columns = %v", cols)
	}
	for _, c := range cols {
		if !want[c] {
			t.Fatalf("unexpected base column %s", c)
		}
	}
}

func TestPlanString(t *testing.T) {
	s := starPlan().String()
	for _, frag := range []string{"scan(dim", "join(dk=fk)", "aggregate", "sort"} {
		if !strings.Contains(s, frag) {
			t.Fatalf("String() missing %q:\n%s", frag, s)
		}
	}
}

func TestEstimateSizes(t *testing.T) {
	cat := testCatalog()
	p := starPlan()
	if err := p.EstimateSizes(cat); err != nil {
		t.Fatal(err)
	}
	for _, n := range p.Nodes() {
		if n.EstInBytes < 0 || n.EstOutBytes <= 0 {
			t.Fatalf("node %d has estimates in=%d out=%d", n.ID(), n.EstInBytes, n.EstOutBytes)
		}
	}
	// A selection's output estimate must be below its input.
	leaf := p.Leaves()[1] // fact scan
	if leaf.EstOutBytes >= leaf.EstInBytes {
		t.Fatal("selection estimate should reduce volume")
	}
	// Error path: unknown table.
	bad := New(Scan("missing", []string{"x"}, nil))
	if err := bad.EstimateSizes(cat); err == nil {
		t.Fatal("expected estimate error for unknown table")
	}
}

func TestEndToEndExecution(t *testing.T) {
	cat := testCatalog()
	p := starPlan()
	// Execute the plan bottom-up directly (no simulator): results must be
	// exact regardless of placement machinery.
	var eval func(n *Node) *engine.Batch
	eval = func(n *Node) *engine.Batch {
		var inputs []*engine.Batch
		for _, c := range n.Children {
			inputs = append(inputs, eval(c))
		}
		out, err := n.Op.Execute(nil, cat, inputs)
		if err != nil {
			t.Fatalf("%s: %v", n.Op.Name(), err)
		}
		return out
	}
	out := eval(p.Root)
	// qty>=20: rows (fk,qty,price) = (2,20,2),(1,30,3),(3,40,4),(2,50,5);
	// dim name != c keeps dk 1,2. Join keeps fk in {1,2}:
	// (b,20*2=40),(a,30*3=90),(b,50*5=250) → sums: a=90, b=290.
	if out.NumRows() != 2 {
		t.Fatalf("rows = %d, want 2", out.NumRows())
	}
	names := out.MustColumn("name").(*column.StringColumn)
	sums := out.MustColumn("sum_rev").(*column.Float64Column).Values
	if names.Value(0) != "b" || sums[0] != 290 {
		t.Fatalf("first row = %s %v", names.Value(0), sums[0])
	}
	if names.Value(1) != "a" || sums[1] != 90 {
		t.Fatalf("second row = %s %v", names.Value(1), sums[1])
	}
}

func TestScanVariants(t *testing.T) {
	cat := testCatalog()
	// Rowid-only scan (selection micro-benchmark shape).
	n := Scan("fact", nil, expr.NewCmp("qty", expr.GE, 30))
	out, err := n.Op.Execute(nil, cat, nil)
	if err != nil {
		t.Fatal(err)
	}
	ids := out.MustColumn("fact.rowid").(*column.Int64Column).Values
	if len(ids) != 3 || ids[0] != 2 || ids[1] != 3 || ids[2] != 4 {
		t.Fatalf("rowids = %v", ids)
	}
	// Unfiltered scan.
	n = Scan("dim", []string{"name"}, nil)
	out, err = n.Op.Execute(nil, cat, nil)
	if err != nil || out.NumRows() != 3 {
		t.Fatalf("unfiltered scan: %v, rows=%d", err, out.NumRows())
	}
	// Error paths.
	if _, err := Scan("missing", nil, nil).Op.Execute(nil, cat, nil); err == nil {
		t.Fatal("expected unknown-table error")
	}
	if _, err := Scan("fact", []string{"zz"}, nil).Op.Execute(nil, cat, nil); err == nil {
		t.Fatal("expected unknown-column error")
	}
	if _, err := Scan("fact", nil, expr.NewCmp("zz", expr.EQ, 1)).Op.Execute(nil, cat, nil); err == nil {
		t.Fatal("expected predicate error")
	}
}

func TestOperatorMetadata(t *testing.T) {
	scan := Scan("fact", []string{"qty"}, expr.NewCmp("qty", expr.GE, 1))
	if scan.Op.Class() != cost.Selection || !strings.Contains(scan.Op.Name(), "scan") {
		t.Fatal("scan metadata wrong")
	}
	if len(scan.Op.BaseColumns()) != 1 { // qty used as filter and output
		t.Fatalf("scan base columns = %v", scan.Op.BaseColumns())
	}
	f := Filter(scan, expr.NewCmp("qty", expr.LT, 100))
	if f.Op.Class() != cost.Selection || f.Op.BaseColumns() != nil {
		t.Fatal("filter metadata wrong")
	}
	pr := Project(f, "qty")
	if pr.Op.Class() != cost.Materialize || !strings.Contains(pr.Op.Name(), "project") {
		t.Fatal("project metadata wrong")
	}
	cpc := ComputeConst(pr, "x", "qty", engine.Mul, 2)
	if cpc.Op.Class() != cost.Compute || !strings.Contains(cpc.Op.Name(), "x=qty*2") {
		t.Fatalf("compute-const metadata wrong: %s", cpc.Op.Name())
	}
	cpl := ComputeConstLeft(pr, "y", 1, engine.Sub, "qty")
	if !strings.Contains(cpl.Op.Name(), "y=1-qty") {
		t.Fatalf("compute-const-left name: %s", cpl.Op.Name())
	}
	j := Join(scan, pr, "a", "b", nil, nil)
	if j.Op.Class() != cost.Join || j.Op.BaseColumns() != nil {
		t.Fatal("join metadata wrong")
	}
	a := Aggregate(pr, []string{"qty"}, nil)
	if a.Op.Class() != cost.Aggregation || !strings.Contains(a.Op.Name(), "aggregate") {
		t.Fatal("aggregate metadata wrong")
	}
	so := Sort(a, engine.SortKey{Col: "qty"})
	if so.Op.Class() != cost.Sort || !strings.Contains(so.Op.Name(), "sort") {
		t.Fatal("sort metadata wrong")
	}
	tn := TopN(a, 5, engine.SortKey{Col: "qty"})
	if !strings.Contains(tn.Op.Name(), "top5") {
		t.Fatal("topn metadata wrong")
	}
}

func TestOperatorArityErrors(t *testing.T) {
	cat := testCatalog()
	b := engine.MustNewBatch(column.NewInt64("x", []int64{1}))
	two := []*engine.Batch{b, b}
	none := []*engine.Batch{}
	if _, err := (&FilterOp{Pred: expr.NewCmp("x", expr.EQ, 1)}).Execute(nil, cat, two); err == nil {
		t.Fatal("filter arity")
	}
	if _, err := (&ProjectOp{Cols: []string{"x"}}).Execute(nil, cat, two); err == nil {
		t.Fatal("project arity")
	}
	if _, err := (&ComputeOp{As: "y", Left: "x", Op: engine.Add, Const: 1}).Execute(nil, cat, two); err == nil {
		t.Fatal("compute arity")
	}
	if _, err := (&JoinOp{LeftKey: "x", RightKey: "x"}).Execute(nil, cat, none); err == nil {
		t.Fatal("join arity")
	}
	if _, err := (&AggregateOp{}).Execute(nil, cat, two); err == nil {
		t.Fatal("aggregate arity")
	}
	if _, err := (&SortOp{Keys: []engine.SortKey{{Col: "x"}}}).Execute(nil, cat, two); err == nil {
		t.Fatal("sort arity")
	}
}

func TestComputeVariantsExecute(t *testing.T) {
	cat := testCatalog()
	in := engine.MustNewBatch(column.NewFloat64("d", []float64{0.1, 0.2}))
	one := []*engine.Batch{in}
	colcol, err := (&ComputeOp{As: "r", Left: "d", Op: engine.Add, Right: "d"}).Execute(nil, cat, one)
	if err != nil || colcol.MustColumn("r").(*column.Float64Column).Values[0] != 0.2 {
		t.Fatalf("col×col compute: %v", err)
	}
	cl, err := (&ComputeOp{As: "r", Left: "d", Op: engine.Sub, Const: 1, ConstLeft: true}).Execute(nil, cat, one)
	if err != nil || cl.MustColumn("r").(*column.Float64Column).Values[0] != 0.9 {
		t.Fatalf("const-left compute: %v", err)
	}
	cc, err := (&ComputeOp{As: "r", Left: "d", Op: engine.Mul, Const: 10}).Execute(nil, cat, one)
	if err != nil || cc.MustColumn("r").(*column.Float64Column).Values[0] != 1 {
		t.Fatalf("const compute: %v", err)
	}
	if _, err := (&ComputeOp{As: "r", Left: "zz", Op: engine.Mul, Const: 1}).Execute(nil, cat, one); err == nil {
		t.Fatal("expected compute error")
	}
}
