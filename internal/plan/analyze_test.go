package plan

import (
	"testing"
	"time"

	"robustdb/internal/trace"
)

// payload builds a two-node document (root 1 ← child 0) with estimates.
func analyzeTestPayload() *ExplainPayload {
	child := &ExplainNode{ID: 0, Kind: "scan", EstRows: 100}
	root := &ExplainNode{ID: 1, Kind: "aggregate", EstRows: 10, Children: []*ExplainNode{child}}
	return &ExplainPayload{Version: ExplainVersion, Root: root}
}

func TestAttachActualsCleanRun(t *testing.T) {
	p := analyzeTestPayload()
	spans := []trace.Span{
		{Query: "q0001", Class: "query", Tenant: "acme", Start: 0, End: 90 * time.Microsecond},
		{Query: "q0001", Class: "selection", Node: 0, Proc: "gpu", Attempt: 0,
			Start: 0, End: 40 * time.Microsecond, Rows: 50, OutBytes: 400},
		{Query: "q0001", Class: "aggregation", Node: 1, Proc: "cpu", Attempt: 0,
			Start: 40 * time.Microsecond, End: 90 * time.Microsecond, Rows: 10, OutBytes: 80},
	}
	AttachActuals(p, "q0001", spans, "")
	if p.Exec == nil || p.Exec.QueryID != "q0001" || p.Exec.Outcome != "ok" {
		t.Fatalf("exec = %+v", p.Exec)
	}
	if p.Exec.LatencyUS != 90 || p.Exec.Tenant != "acme" {
		t.Fatalf("exec = %+v", p.Exec)
	}
	// Worst misestimate is the scan: est 100 vs actual 50 → q-error 2.
	if p.Exec.QError != 2 {
		t.Fatalf("q-error = %v, want 2", p.Exec.QError)
	}
	a := p.Root.Children[0].Analyze
	if a.Status != "ok" || a.ActualRows != 50 || a.ActualBytes != 400 ||
		a.WallUS != 40 || a.Processor != "gpu" || a.Attempts != 1 {
		t.Fatalf("scan analyze = %+v", a)
	}
}

// TestAttachActualsShed pins the shed contract: a query that never reached
// the engine has no spans, so every node reports status "missing" with zero
// attempts — flagged absence, never fabricated zero-row actuals.
func TestAttachActualsShed(t *testing.T) {
	p := analyzeTestPayload()
	AttachActuals(p, "", nil, "shed")
	if p.Exec.Outcome != "shed" {
		t.Fatalf("outcome = %q, want shed", p.Exec.Outcome)
	}
	for _, n := range []*ExplainNode{p.Root, p.Root.Children[0]} {
		a := n.Analyze
		if a == nil || a.Status != "missing" || a.Attempts != 0 || a.ActualRows != 0 || a.Processor != "" {
			t.Fatalf("node %d analyze = %+v, want missing with no actuals", n.ID, a)
		}
	}
	if p.Exec.QError != 0 {
		t.Fatalf("q-error over missing nodes = %v, want 0", p.Exec.QError)
	}
}

// TestAttachActualsDeadlineMidPlan pins the partial contract: a deadline that
// fires mid-plan leaves completed nodes "ok", started-but-aborted nodes
// "partial" (real durations, no rows), and unreached nodes "missing".
func TestAttachActualsDeadlineMidPlan(t *testing.T) {
	p := analyzeTestPayload()
	spans := []trace.Span{
		{Query: "q0002", Class: "query", Start: 0, End: 30 * time.Microsecond, Abort: "failed"},
		{Query: "q0002", Class: "selection", Node: 0, Proc: "gpu", Attempt: 0,
			Start: 0, End: 30 * time.Microsecond, Abort: "deadline",
			QueueWait: 5 * time.Microsecond},
		// Node 1 never started: no span at all.
	}
	AttachActuals(p, "q0002", spans, "deadline")
	if p.Exec.Outcome != "deadline" {
		t.Fatalf("outcome = %q, want deadline (server override wins)", p.Exec.Outcome)
	}
	scan := p.Root.Children[0].Analyze
	if scan.Status != "partial" || scan.Attempts != 1 || scan.WallUS != 30 || scan.QueueWaitUS != 5 {
		t.Fatalf("aborted scan analyze = %+v, want partial with real durations", scan)
	}
	if scan.ActualRows != 0 || scan.ActualBytes != 0 {
		t.Fatalf("aborted scan reports rows/bytes %d/%d, want 0/0 (output rolled back)",
			scan.ActualRows, scan.ActualBytes)
	}
	if root := p.Root.Analyze; root.Status != "missing" || root.Attempts != 0 {
		t.Fatalf("unreached root analyze = %+v, want missing", root)
	}
}

// TestAttachActualsRetries pins attempt folding: durations sum across every
// attempt, rows/bytes and processor come from the completed attempt only.
func TestAttachActualsRetries(t *testing.T) {
	p := analyzeTestPayload()
	spans := []trace.Span{
		{Query: "q0003", Class: "query", Start: 0, End: 100 * time.Microsecond},
		{Query: "q0003", Class: "selection", Node: 0, Proc: "gpu", Attempt: 0,
			Start: 0, End: 20 * time.Microsecond, Abort: "alloc"},
		{Query: "q0003", Class: "selection", Node: 0, Proc: "cpu", Attempt: 1,
			Start: 20 * time.Microsecond, End: 60 * time.Microsecond, Rows: 50, OutBytes: 400},
		{Query: "q0003", Class: "aggregation", Node: 1, Proc: "cpu", Attempt: 0,
			Start: 60 * time.Microsecond, End: 100 * time.Microsecond, Rows: 10, OutBytes: 80},
	}
	AttachActuals(p, "q0003", spans, "")
	a := p.Root.Children[0].Analyze
	if a.Status != "ok" || a.Attempts != 2 {
		t.Fatalf("retried scan analyze = %+v", a)
	}
	if a.WallUS != 60 {
		t.Fatalf("wall = %dµs, want 60 (summed across attempts)", a.WallUS)
	}
	if a.ActualRows != 50 || a.Processor != "cpu" {
		t.Fatalf("actuals must come from the completed attempt: %+v", a)
	}
}
