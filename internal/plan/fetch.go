package plan

import (
	"fmt"

	"robustdb/internal/column"
	"robustdb/internal/cost"
	"robustdb/internal/engine"
	"robustdb/internal/table"
)

// FetchOp is late materialization: it gathers base-table columns at the row
// positions its child produced (a "<table>.rowid" column, as emitted by a
// projection-free Scan). This is the final materialization step of a
// positional selection pipeline — the "select *" of the paper's
// micro-benchmarks — and reads base columns, so it participates in caching
// and data-driven placement like a scan.
type FetchOp struct {
	Table string
	Cols  []string
}

// Fetch builds a late-materialization node over child.
func Fetch(child *Node, tbl string, cols ...string) *Node {
	return NewNode(&FetchOp{Table: tbl, Cols: cols}, child)
}

// Class returns cost.Materialize.
func (o *FetchOp) Class() cost.OpClass { return cost.Materialize }

// Name describes the fetch.
func (o *FetchOp) Name() string { return fmt.Sprintf("fetch(%s%v)", o.Table, o.Cols) }

// BaseColumns returns the gathered base columns.
func (o *FetchOp) BaseColumns() []table.ColumnID {
	out := make([]table.ColumnID, len(o.Cols))
	for i, c := range o.Cols {
		out[i] = table.MakeColumnID(o.Table, c)
	}
	return out
}

// Execute gathers the base columns at the child's row ids.
func (o *FetchOp) Execute(ectx *engine.Ctx, cat *table.Catalog, inputs []*engine.Batch) (*engine.Batch, error) {
	if len(inputs) != 1 {
		return nil, fmt.Errorf("fetch: want 1 input, got %d", len(inputs))
	}
	t, err := cat.Table(o.Table)
	if err != nil {
		return nil, err
	}
	ridCol, err := inputs[0].Column(o.Table + ".rowid")
	if err != nil {
		return nil, fmt.Errorf("fetch: %w", err)
	}
	rids, ok := ridCol.(*column.Int64Column)
	if !ok {
		return nil, fmt.Errorf("fetch: rowid column has type %T", ridCol)
	}
	pos := make(column.PosList, len(rids.Values))
	for i, r := range rids.Values {
		if r < 0 || r >= int64(t.NumRows()) {
			return nil, fmt.Errorf("fetch: rowid %d out of range [0,%d)", r, t.NumRows())
		}
		pos[i] = int32(r)
	}
	cols := make([]column.Column, len(o.Cols))
	for i, name := range o.Cols {
		c, err := t.Column(name)
		if err != nil {
			return nil, err
		}
		cols[i] = engine.Gather(ectx, c, pos)
	}
	return engine.NewBatch(cols...)
}

// IntersectOp intersects two sorted "<table>.rowid" position columns — the
// conjunction operator of a positional selection pipeline.
type IntersectOp struct {
	Table string
}

// Intersect builds a rowid-intersection node over two children.
func Intersect(left, right *Node, tbl string) *Node {
	return NewNode(&IntersectOp{Table: tbl}, left, right)
}

// Class returns cost.Selection.
func (o *IntersectOp) Class() cost.OpClass { return cost.Selection }

// Name describes the intersection.
func (o *IntersectOp) Name() string { return fmt.Sprintf("intersect(%s)", o.Table) }

// BaseColumns returns nil.
func (o *IntersectOp) BaseColumns() []table.ColumnID { return nil }

// Execute intersects the two rowid lists.
func (o *IntersectOp) Execute(_ *engine.Ctx, _ *table.Catalog, inputs []*engine.Batch) (*engine.Batch, error) {
	if len(inputs) != 2 {
		return nil, fmt.Errorf("intersect: want 2 inputs, got %d", len(inputs))
	}
	name := o.Table + ".rowid"
	lists := make([]column.PosList, 2)
	for i, in := range inputs {
		c, err := in.Column(name)
		if err != nil {
			return nil, fmt.Errorf("intersect: %w", err)
		}
		ints, ok := c.(*column.Int64Column)
		if !ok {
			return nil, fmt.Errorf("intersect: rowid column has type %T", c)
		}
		pos := make(column.PosList, len(ints.Values))
		for j, v := range ints.Values {
			pos[j] = int32(v)
		}
		lists[i] = pos
	}
	out := lists[0].Intersect(lists[1])
	ids := make([]int64, len(out))
	for i, p := range out {
		ids[i] = int64(p)
	}
	return engine.NewBatch(column.NewInt64(name, ids))
}
