package plan

import (
	"fmt"

	"robustdb/internal/cost"
	"robustdb/internal/engine"
	"robustdb/internal/table"
)

// SemiJoinOp keeps the probe-side rows (child 1) that have at least one
// match in the build side (child 0). It implements EXISTS-style filtering
// (e.g. TPC-H Q4: orders with at least one late lineitem) and the
// invisible-join pattern of star schema processing.
type SemiJoinOp struct {
	BuildKey, ProbeKey string
}

// SemiJoin builds a semi-join node: probe rows filtered by build keys.
func SemiJoin(build, probe *Node, buildKey, probeKey string) *Node {
	return NewNode(&SemiJoinOp{BuildKey: buildKey, ProbeKey: probeKey}, build, probe)
}

// Class returns cost.Join.
func (o *SemiJoinOp) Class() cost.OpClass { return cost.Join }

// Name describes the semi join.
func (o *SemiJoinOp) Name() string {
	return fmt.Sprintf("semijoin(%s=%s)", o.BuildKey, o.ProbeKey)
}

// BaseColumns returns nil: semi joins read intermediates only.
func (o *SemiJoinOp) BaseColumns() []table.ColumnID { return nil }

// Execute runs the semi join.
func (o *SemiJoinOp) Execute(ectx *engine.Ctx, _ *table.Catalog, inputs []*engine.Batch) (*engine.Batch, error) {
	if len(inputs) != 2 {
		return nil, fmt.Errorf("semijoin: want 2 inputs, got %d", len(inputs))
	}
	pos, err := engine.SemiJoin(ectx, inputs[0], o.BuildKey, inputs[1], o.ProbeKey)
	if err != nil {
		return nil, err
	}
	return inputs[1].GatherCtx(ectx, pos), nil
}
