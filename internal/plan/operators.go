package plan

import (
	"fmt"

	"robustdb/internal/column"
	"robustdb/internal/cost"
	"robustdb/internal/engine"
	"robustdb/internal/expr"
	"robustdb/internal/table"
)

// ChunkInfo describes the chunkable shape of a leaf operator for the
// pipelined executor: how many rows it scans, how many bytes per row must
// travel host→device, and how many bytes one selected output row costs
// device→host.
type ChunkInfo struct {
	// Rows is the total row count of the scanned table.
	Rows int
	// InBytes is the total input volume (every base column the operator
	// reads, in its stored encoding).
	InBytes int64
	// OutRowBytes is the estimated output bytes per *selected* row.
	OutRowBytes float64
}

// InRowBytes returns the input bytes per scanned row.
func (c ChunkInfo) InRowBytes() float64 {
	if c.Rows <= 0 {
		return 0
	}
	return float64(c.InBytes) / float64(c.Rows)
}

// ChunkableOp is an operator the pipelined executor can split into row-range
// chunks. The contract is exactness: concatenating FilterChunk results over a
// partition of [0, Rows) in range order and materializing once must be
// bit-identical to Execute. Only leaf operators (no batch inputs) implement
// it today.
type ChunkableOp interface {
	Operator
	// ChunkInfo reports the chunkable shape, or an error when the catalog
	// cannot resolve the operator's table.
	ChunkInfo(cat *table.Catalog) (ChunkInfo, error)
	// FilterChunk evaluates the operator's selection over rows [lo, hi) and
	// returns the qualifying positions as global row numbers, in ascending
	// order.
	FilterChunk(ectx *engine.Ctx, cat *table.Catalog, lo, hi int) (column.PosList, error)
	// MaterializeResult builds the operator's output batch from the stitched
	// position list.
	MaterializeResult(ectx *engine.Ctx, cat *table.Catalog, pos column.PosList) (*engine.Batch, error)
}

// ScanOp filters a base table and materializes the requested columns.
// With a nil predicate it materializes the columns unfiltered; with an empty
// column list it emits a single "<table>.rowid" position column (the shape of
// the paper's selection micro-benchmarks, which measure pure filtering).
type ScanOp struct {
	Table string
	Cols  []string
	Pred  expr.Predicate
}

// Scan builds a leaf scan node.
func Scan(tbl string, cols []string, pred expr.Predicate) *Node {
	return NewNode(&ScanOp{Table: tbl, Cols: cols, Pred: pred})
}

// Class returns cost.Selection.
func (o *ScanOp) Class() cost.OpClass { return cost.Selection }

// Name describes the scan.
func (o *ScanOp) Name() string {
	if o.Pred != nil {
		return fmt.Sprintf("scan(%s where %s)", o.Table, o.Pred)
	}
	return fmt.Sprintf("scan(%s)", o.Table)
}

// BaseColumns returns the filter columns and the materialized columns.
func (o *ScanOp) BaseColumns() []table.ColumnID {
	seen := make(map[string]bool)
	var out []table.ColumnID
	add := func(c string) {
		if !seen[c] {
			seen[c] = true
			out = append(out, table.MakeColumnID(o.Table, c))
		}
	}
	if o.Pred != nil {
		for _, c := range o.Pred.Columns() {
			add(c)
		}
	}
	for _, c := range o.Cols {
		add(c)
	}
	return out
}

// Execute runs the scan on real data: one full-range chunk, stitched and
// materialized — the serial special case of the chunked execution path, which
// makes chunked and serial scans bit-identical by construction.
func (o *ScanOp) Execute(ectx *engine.Ctx, cat *table.Catalog, _ []*engine.Batch) (*engine.Batch, error) {
	t, err := cat.Table(o.Table)
	if err != nil {
		return nil, err
	}
	pos, err := o.FilterChunk(ectx, cat, 0, t.NumRows())
	if err != nil {
		return nil, err
	}
	return o.MaterializeResult(ectx, cat, pos)
}

// ChunkInfo reports the scan's chunkable shape for the pipelined executor.
func (o *ScanOp) ChunkInfo(cat *table.Catalog) (ChunkInfo, error) {
	t, err := cat.Table(o.Table)
	if err != nil {
		return ChunkInfo{}, err
	}
	info := ChunkInfo{Rows: t.NumRows()}
	for _, id := range o.BaseColumns() {
		b, err := cat.ColumnBytes(id)
		if err != nil {
			return ChunkInfo{}, err
		}
		info.InBytes += b
	}
	if len(o.Cols) == 0 {
		info.OutRowBytes = 8 // the rowid column
	} else if info.Rows > 0 {
		for _, name := range o.Cols {
			c, err := t.Column(name)
			if err != nil {
				return ChunkInfo{}, err
			}
			info.OutRowBytes += float64(c.Bytes()) / float64(info.Rows)
		}
	}
	return info, nil
}

// FilterChunk evaluates the scan's predicate over rows [lo, hi), returning
// global positions. With a nil predicate every row in the range qualifies.
func (o *ScanOp) FilterChunk(ectx *engine.Ctx, cat *table.Catalog, lo, hi int) (column.PosList, error) {
	t, err := cat.Table(o.Table)
	if err != nil {
		return nil, err
	}
	if o.Pred == nil {
		if lo == 0 && hi == t.NumRows() {
			return column.All(t.NumRows()), nil
		}
		pos := make(column.PosList, 0, hi-lo)
		for i := lo; i < hi; i++ {
			pos = append(pos, int32(i))
		}
		return pos, nil
	}
	// Hand the predicate's base columns to the filter kernel in their
	// stored encoding: compressed columns are scanned in the code domain
	// (block skipping, run comparisons) and sliced per morsel without
	// ever materializing.
	seen := make(map[string]bool)
	var predCols []column.Column
	for _, name := range o.Pred.Columns() {
		if seen[name] {
			continue
		}
		seen[name] = true
		c, err := t.Column(name)
		if err != nil {
			return nil, err
		}
		predCols = append(predCols, c)
	}
	pb, err := engine.NewBatch(predCols...)
	if err != nil {
		return nil, err
	}
	return engine.FilterRange(ectx, pb, o.Pred, lo, hi)
}

// MaterializeResult gathers the requested columns through the stitched
// position list (or emits the rowid column for a bare selection).
func (o *ScanOp) MaterializeResult(ectx *engine.Ctx, cat *table.Catalog, pos column.PosList) (*engine.Batch, error) {
	t, err := cat.Table(o.Table)
	if err != nil {
		return nil, err
	}
	if len(o.Cols) == 0 {
		ids := make([]int64, len(pos))
		for i, p := range pos {
			ids[i] = int64(p)
		}
		return engine.NewBatch(column.NewInt64(o.Table+".rowid", ids))
	}
	cols := make([]column.Column, len(o.Cols))
	for i, name := range o.Cols {
		c, err := t.Column(name)
		if err != nil {
			return nil, err
		}
		cols[i] = engine.Gather(ectx, c, pos)
	}
	return engine.NewBatch(cols...)
}

// FilterOp filters an intermediate batch with a predicate.
type FilterOp struct {
	Pred expr.Predicate
}

// Filter builds a selection node over child.
func Filter(child *Node, pred expr.Predicate) *Node {
	return NewNode(&FilterOp{Pred: pred}, child)
}

// Class returns cost.Selection.
func (o *FilterOp) Class() cost.OpClass { return cost.Selection }

// Name describes the filter.
func (o *FilterOp) Name() string { return fmt.Sprintf("filter(%s)", o.Pred) }

// BaseColumns returns nil: filters read intermediates only.
func (o *FilterOp) BaseColumns() []table.ColumnID { return nil }

// Execute runs the filter.
func (o *FilterOp) Execute(ectx *engine.Ctx, _ *table.Catalog, inputs []*engine.Batch) (*engine.Batch, error) {
	if len(inputs) != 1 {
		return nil, fmt.Errorf("filter: want 1 input, got %d", len(inputs))
	}
	return engine.Select(ectx, inputs[0], o.Pred)
}

// ProjectOp keeps only the named columns of its input.
type ProjectOp struct {
	Cols []string
}

// Project builds a projection node over child.
func Project(child *Node, cols ...string) *Node {
	return NewNode(&ProjectOp{Cols: cols}, child)
}

// Class returns cost.Materialize.
func (o *ProjectOp) Class() cost.OpClass { return cost.Materialize }

// Name describes the projection.
func (o *ProjectOp) Name() string { return fmt.Sprintf("project%v", o.Cols) }

// BaseColumns returns nil.
func (o *ProjectOp) BaseColumns() []table.ColumnID { return nil }

// Execute runs the projection.
func (o *ProjectOp) Execute(_ *engine.Ctx, _ *table.Catalog, inputs []*engine.Batch) (*engine.Batch, error) {
	if len(inputs) != 1 {
		return nil, fmt.Errorf("project: want 1 input, got %d", len(inputs))
	}
	return inputs[0].Project(o.Cols...)
}

// ComputeOp appends a derived column "As = Left op Right" to its input.
// Exactly one of Right (column) or Const/ConstLeft forms is used.
type ComputeOp struct {
	As    string
	Left  string
	Op    engine.BinOp
	Right string // column form when non-empty

	Const     float64 // constant form when Right == ""
	ConstLeft bool    // true: As = Const op Left; false: As = Left op Const
}

// Compute builds "as = left op right" over child (column × column).
func Compute(child *Node, as, left string, op engine.BinOp, right string) *Node {
	return NewNode(&ComputeOp{As: as, Left: left, Op: op, Right: right}, child)
}

// ComputeConst builds "as = left op k" over child.
func ComputeConst(child *Node, as, left string, op engine.BinOp, k float64) *Node {
	return NewNode(&ComputeOp{As: as, Left: left, Op: op, Const: k}, child)
}

// ComputeConstLeft builds "as = k op left" over child (e.g. 1 - discount).
func ComputeConstLeft(child *Node, as string, k float64, op engine.BinOp, left string) *Node {
	return NewNode(&ComputeOp{As: as, Left: left, Op: op, Const: k, ConstLeft: true}, child)
}

// Class returns cost.Compute.
func (o *ComputeOp) Class() cost.OpClass { return cost.Compute }

// Name describes the computation.
func (o *ComputeOp) Name() string {
	if o.Right != "" {
		return fmt.Sprintf("compute(%s=%s%s%s)", o.As, o.Left, o.Op, o.Right)
	}
	if o.ConstLeft {
		return fmt.Sprintf("compute(%s=%v%s%s)", o.As, o.Const, o.Op, o.Left)
	}
	return fmt.Sprintf("compute(%s=%s%s%v)", o.As, o.Left, o.Op, o.Const)
}

// BaseColumns returns nil.
func (o *ComputeOp) BaseColumns() []table.ColumnID { return nil }

// Execute runs the computation.
func (o *ComputeOp) Execute(ectx *engine.Ctx, _ *table.Catalog, inputs []*engine.Batch) (*engine.Batch, error) {
	if len(inputs) != 1 {
		return nil, fmt.Errorf("compute: want 1 input, got %d", len(inputs))
	}
	in := inputs[0]
	var (
		col column.Column
		err error
	)
	switch {
	case o.Right != "":
		col, err = engine.Compute(ectx, in, o.As, o.Left, o.Op, o.Right)
	case o.ConstLeft:
		col, err = engine.ComputeConstLeft(ectx, in, o.As, o.Const, o.Op, o.Left)
	default:
		col, err = engine.ComputeConst(ectx, in, o.As, o.Left, o.Op, o.Const)
	}
	if err != nil {
		return nil, err
	}
	return in.Extend(col)
}

// JoinOp hash-joins its two children: build on the left (child 0), probe
// with the right (child 1), keeping LeftCols and RightCols.
type JoinOp struct {
	LeftKey, RightKey   string
	LeftCols, RightCols []string
}

// Join builds a hash-join node with left as the build side.
func Join(left, right *Node, leftKey, rightKey string, leftCols, rightCols []string) *Node {
	return NewNode(&JoinOp{
		LeftKey: leftKey, RightKey: rightKey,
		LeftCols: leftCols, RightCols: rightCols,
	}, left, right)
}

// Class returns cost.Join.
func (o *JoinOp) Class() cost.OpClass { return cost.Join }

// Name describes the join.
func (o *JoinOp) Name() string { return fmt.Sprintf("join(%s=%s)", o.LeftKey, o.RightKey) }

// BaseColumns returns nil: joins read intermediates only.
func (o *JoinOp) BaseColumns() []table.ColumnID { return nil }

// Execute runs the join.
func (o *JoinOp) Execute(ectx *engine.Ctx, _ *table.Catalog, inputs []*engine.Batch) (*engine.Batch, error) {
	if len(inputs) != 2 {
		return nil, fmt.Errorf("join: want 2 inputs, got %d", len(inputs))
	}
	res, err := engine.HashJoin(ectx, inputs[0], o.LeftKey, inputs[1], o.RightKey)
	if err != nil {
		return nil, err
	}
	return engine.MaterializeJoin(ectx, res, inputs[0], o.LeftCols, inputs[1], o.RightCols)
}

// AggregateOp groups by Keys and computes Aggs.
type AggregateOp struct {
	Keys []string
	Aggs []engine.AggSpec
}

// Aggregate builds a group-by node over child.
func Aggregate(child *Node, keys []string, aggs []engine.AggSpec) *Node {
	return NewNode(&AggregateOp{Keys: keys, Aggs: aggs}, child)
}

// Class returns cost.Aggregation.
func (o *AggregateOp) Class() cost.OpClass { return cost.Aggregation }

// Name describes the aggregation.
func (o *AggregateOp) Name() string { return fmt.Sprintf("aggregate(by %v)", o.Keys) }

// BaseColumns returns nil.
func (o *AggregateOp) BaseColumns() []table.ColumnID { return nil }

// Execute runs the aggregation.
func (o *AggregateOp) Execute(ectx *engine.Ctx, _ *table.Catalog, inputs []*engine.Batch) (*engine.Batch, error) {
	if len(inputs) != 1 {
		return nil, fmt.Errorf("aggregate: want 1 input, got %d", len(inputs))
	}
	return engine.GroupBy(ectx, inputs[0], o.Keys, o.Aggs)
}

// SortOp orders its input; Limit > 0 keeps the first Limit rows.
type SortOp struct {
	Keys  []engine.SortKey
	Limit int
}

// Sort builds an order-by node over child.
func Sort(child *Node, keys ...engine.SortKey) *Node {
	return NewNode(&SortOp{Keys: keys}, child)
}

// TopN builds an order-by-limit node over child.
func TopN(child *Node, n int, keys ...engine.SortKey) *Node {
	return NewNode(&SortOp{Keys: keys, Limit: n}, child)
}

// Class returns cost.Sort.
func (o *SortOp) Class() cost.OpClass { return cost.Sort }

// Name describes the sort.
func (o *SortOp) Name() string {
	if o.Limit > 0 {
		return fmt.Sprintf("top%d(%v)", o.Limit, o.Keys)
	}
	return fmt.Sprintf("sort(%v)", o.Keys)
}

// BaseColumns returns nil.
func (o *SortOp) BaseColumns() []table.ColumnID { return nil }

// Execute runs the sort.
func (o *SortOp) Execute(_ *engine.Ctx, _ *table.Catalog, inputs []*engine.Batch) (*engine.Batch, error) {
	if len(inputs) != 1 {
		return nil, fmt.Errorf("sort: want 1 input, got %d", len(inputs))
	}
	if o.Limit > 0 {
		return engine.TopN(inputs[0], o.Limit, o.Keys...)
	}
	return engine.OrderBy(inputs[0], o.Keys...)
}
