// Package bus simulates the PCIe link between host and co-processor: a pair
// of directed channels with latency and bandwidth, FIFO arbitration, and
// transfer accounting.
//
// The paper identifies this link as the central bottleneck of co-processor
// query processing (§1, [11]); Figures 6, 15 and 19 plot exactly the
// per-direction transfer times this package accumulates.
package bus

import (
	"fmt"
	"time"

	"robustdb/internal/sim"
)

// Direction names a transfer direction.
type Direction uint8

// Transfer directions.
const (
	// HostToDevice is CPU → co-processor (input columns, re-uploads).
	HostToDevice Direction = iota
	// DeviceToHost is co-processor → CPU (results, aborted intermediates).
	DeviceToHost
)

// String returns a short direction label.
func (d Direction) String() string {
	switch d {
	case HostToDevice:
		return "H2D"
	case DeviceToHost:
		return "D2H"
	default:
		return fmt.Sprintf("dir(%d)", uint8(d))
	}
}

// Link is one direction of the bus.
type Link struct {
	dir       Direction
	bandwidth float64 // bytes per second
	latency   time.Duration
	slot      *sim.Pool // serializes transfers FIFO
	bytes     int64
	busy      time.Duration
	transfers int64
	faults    int64
	// Interval-union busy accounting: service intervals of concurrent
	// transfers on one link may overlap (the pipelined executor keeps several
	// chunk transfers in flight), so busy time is accumulated per
	// busy-interval — first service begin to last service end — not per
	// transfer. With the capacity-1 slot this is identical to summing service
	// times; it stays correct if the slot capacity ever grows.
	active    int
	busyStart time.Duration
	onBusy    func(time.Duration)
}

// TransferHook is consulted before a fallible transfer moves data. Returning
// a non-nil error fails the transfer with that error after charging only the
// setup latency (the DMA was programmed but the payload never arrived).
// Fault injectors install hooks to produce PCIe transfer errors.
type TransferHook func(d Direction, n int64) error

// Bus is the full-duplex interconnect: independent links per direction, the
// standard model for PCIe with separate DMA engines per direction (and the
// reason CoGaDB uses CUDA streams, §2.5.3).
type Bus struct {
	links [2]*Link
	hook  TransferHook
}

// Config holds the physical parameters of the bus.
type Config struct {
	// Bandwidth is the effective per-direction bandwidth in bytes/second.
	Bandwidth float64
	// Latency is the fixed per-transfer setup latency.
	Latency time.Duration
}

// New creates a bus inside the simulation s.
func New(s *sim.Sim, cfg Config) *Bus {
	if cfg.Bandwidth <= 0 {
		panic(fmt.Sprintf("bus: bandwidth must be positive, got %v", cfg.Bandwidth))
	}
	b := &Bus{}
	for _, d := range []Direction{HostToDevice, DeviceToHost} {
		b.links[d] = &Link{
			dir:       d,
			bandwidth: cfg.Bandwidth,
			latency:   cfg.Latency,
			slot:      sim.NewPool(s, "bus-"+d.String(), 1),
		}
	}
	return b
}

// Link returns the link of the given direction.
func (b *Bus) Link(d Direction) *Link { return b.links[d] }

// SetTransferHook installs (or, with nil, removes) the transfer fault hook.
// Only fallible transfers (TryTransfer) consult it; Transfer always succeeds.
func (b *Bus) SetTransferHook(h TransferHook) { b.hook = h }

// Transfer moves n bytes in direction d on behalf of process p, blocking in
// virtual time for queueing + latency + n/bandwidth. Zero-byte transfers are
// free and do not touch the link. Transfer never fails; operator-path
// transfers that must react to injected faults use TryTransfer instead.
func (b *Bus) Transfer(p *sim.Proc, d Direction, n int64) {
	if err := b.transfer(p, d, n, false); err != nil {
		// Infallible transfers bypass the fault hook; an error here is a
		// bus-accounting bug, not an injected fault.
		panic("bus: infallible transfer failed: " + err.Error())
	}
}

// TryTransfer is Transfer for the fault-tolerant operator path: an installed
// TransferHook may fail the transfer. A failed transfer still occupies the
// link for its setup latency and counts on the link's fault counter; no
// payload bytes are accounted.
func (b *Bus) TryTransfer(p *sim.Proc, d Direction, n int64) error {
	return b.transfer(p, d, n, true)
}

func (b *Bus) transfer(p *sim.Proc, d Direction, n int64, fallible bool) error {
	if n < 0 {
		panic(fmt.Sprintf("bus: negative transfer %d", n))
	}
	if n == 0 {
		return nil
	}
	l := b.links[d]
	l.slot.Acquire(p)
	defer l.slot.Release()
	l.beginService(p.Now())
	if fallible && b.hook != nil {
		if err := b.hook(d, n); err != nil {
			p.Hold(l.latency)
			l.faults++
			l.endService(p.Now())
			return err
		}
	}
	dur := l.latency + time.Duration(float64(n)/l.bandwidth*float64(time.Second))
	p.Hold(dur)
	l.bytes += n
	l.transfers++
	l.endService(p.Now())
	return nil
}

// beginService marks the start of one transfer's service interval. The first
// concurrent transfer opens a busy interval.
func (l *Link) beginService(now time.Duration) {
	if l.active == 0 {
		l.busyStart = now
	}
	l.active++
}

// endService marks the end of one transfer's service interval. The last
// concurrent transfer closes the busy interval and accounts it.
func (l *Link) endService(now time.Duration) {
	l.active--
	if l.active == 0 {
		d := now - l.busyStart
		l.busy += d
		if l.onBusy != nil {
			l.onBusy(d)
		}
	}
}

// Duration returns the service time (excluding queueing) of an n-byte
// transfer in direction d.
func (b *Bus) Duration(d Direction, n int64) time.Duration {
	if n <= 0 {
		return 0
	}
	l := b.links[d]
	return l.latency + time.Duration(float64(n)/l.bandwidth*float64(time.Second))
}

// Bytes returns the total bytes moved on the link.
func (l *Link) Bytes() int64 { return l.bytes }

// BusyTime returns the accumulated busy time of the link: the union of all
// service intervals, correct under concurrent transfers (overlapping
// intervals count once). An interval still open (a transfer in flight) is not
// included until it closes.
func (l *Link) BusyTime() time.Duration { return l.busy }

// SetBusyMeter installs (or, with nil, removes) a hook invoked with the
// duration of every closed busy interval — the engine mirrors link busy time
// into its atomic metrics registry through it so /metrics sees
// robustdb_bus_busy_seconds_total per direction as it accumulates.
func (l *Link) SetBusyMeter(fn func(time.Duration)) { l.onBusy = fn }

// InFlight returns the number of transfers currently in service on the link.
func (l *Link) InFlight() int { return l.active }

// Waiting returns the number of transfers queued on the link's FIFO slot.
func (l *Link) Waiting() int { return l.slot.Waiting() }

// Transfers returns the number of transfers served.
func (l *Link) Transfers() int64 { return l.transfers }

// Faults returns the number of transfers failed by the fault hook.
func (l *Link) Faults() int64 { return l.faults }

// Direction returns the link's direction.
func (l *Link) Direction() Direction { return l.dir }
