// Package bus simulates the PCIe link between host and co-processor: a pair
// of directed channels with latency and bandwidth, FIFO arbitration, and
// transfer accounting.
//
// The paper identifies this link as the central bottleneck of co-processor
// query processing (§1, [11]); Figures 6, 15 and 19 plot exactly the
// per-direction transfer times this package accumulates.
package bus

import (
	"fmt"
	"time"

	"robustdb/internal/sim"
)

// Direction names a transfer direction.
type Direction uint8

// Transfer directions.
const (
	// HostToDevice is CPU → co-processor (input columns, re-uploads).
	HostToDevice Direction = iota
	// DeviceToHost is co-processor → CPU (results, aborted intermediates).
	DeviceToHost
)

// String returns a short direction label.
func (d Direction) String() string {
	switch d {
	case HostToDevice:
		return "H2D"
	case DeviceToHost:
		return "D2H"
	default:
		return fmt.Sprintf("dir(%d)", uint8(d))
	}
}

// Link is one direction of the bus.
type Link struct {
	dir       Direction
	bandwidth float64 // bytes per second
	latency   time.Duration
	slot      *sim.Pool // serializes transfers FIFO
	bytes     int64
	busy      time.Duration
	transfers int64
	faults    int64
}

// TransferHook is consulted before a fallible transfer moves data. Returning
// a non-nil error fails the transfer with that error after charging only the
// setup latency (the DMA was programmed but the payload never arrived).
// Fault injectors install hooks to produce PCIe transfer errors.
type TransferHook func(d Direction, n int64) error

// Bus is the full-duplex interconnect: independent links per direction, the
// standard model for PCIe with separate DMA engines per direction (and the
// reason CoGaDB uses CUDA streams, §2.5.3).
type Bus struct {
	links [2]*Link
	hook  TransferHook
}

// Config holds the physical parameters of the bus.
type Config struct {
	// Bandwidth is the effective per-direction bandwidth in bytes/second.
	Bandwidth float64
	// Latency is the fixed per-transfer setup latency.
	Latency time.Duration
}

// New creates a bus inside the simulation s.
func New(s *sim.Sim, cfg Config) *Bus {
	if cfg.Bandwidth <= 0 {
		panic(fmt.Sprintf("bus: bandwidth must be positive, got %v", cfg.Bandwidth))
	}
	b := &Bus{}
	for _, d := range []Direction{HostToDevice, DeviceToHost} {
		b.links[d] = &Link{
			dir:       d,
			bandwidth: cfg.Bandwidth,
			latency:   cfg.Latency,
			slot:      sim.NewPool(s, "bus-"+d.String(), 1),
		}
	}
	return b
}

// Link returns the link of the given direction.
func (b *Bus) Link(d Direction) *Link { return b.links[d] }

// SetTransferHook installs (or, with nil, removes) the transfer fault hook.
// Only fallible transfers (TryTransfer) consult it; Transfer always succeeds.
func (b *Bus) SetTransferHook(h TransferHook) { b.hook = h }

// Transfer moves n bytes in direction d on behalf of process p, blocking in
// virtual time for queueing + latency + n/bandwidth. Zero-byte transfers are
// free and do not touch the link. Transfer never fails; operator-path
// transfers that must react to injected faults use TryTransfer instead.
func (b *Bus) Transfer(p *sim.Proc, d Direction, n int64) {
	if err := b.transfer(p, d, n, false); err != nil {
		// Infallible transfers bypass the fault hook; an error here is a
		// bus-accounting bug, not an injected fault.
		panic("bus: infallible transfer failed: " + err.Error())
	}
}

// TryTransfer is Transfer for the fault-tolerant operator path: an installed
// TransferHook may fail the transfer. A failed transfer still occupies the
// link for its setup latency and counts on the link's fault counter; no
// payload bytes are accounted.
func (b *Bus) TryTransfer(p *sim.Proc, d Direction, n int64) error {
	return b.transfer(p, d, n, true)
}

func (b *Bus) transfer(p *sim.Proc, d Direction, n int64, fallible bool) error {
	if n < 0 {
		panic(fmt.Sprintf("bus: negative transfer %d", n))
	}
	if n == 0 {
		return nil
	}
	l := b.links[d]
	l.slot.Acquire(p)
	defer l.slot.Release()
	if fallible && b.hook != nil {
		if err := b.hook(d, n); err != nil {
			p.Hold(l.latency)
			l.busy += l.latency
			l.faults++
			return err
		}
	}
	dur := l.latency + time.Duration(float64(n)/l.bandwidth*float64(time.Second))
	p.Hold(dur)
	l.bytes += n
	l.busy += dur
	l.transfers++
	return nil
}

// Duration returns the service time (excluding queueing) of an n-byte
// transfer in direction d.
func (b *Bus) Duration(d Direction, n int64) time.Duration {
	if n <= 0 {
		return 0
	}
	l := b.links[d]
	return l.latency + time.Duration(float64(n)/l.bandwidth*float64(time.Second))
}

// Bytes returns the total bytes moved on the link.
func (l *Link) Bytes() int64 { return l.bytes }

// BusyTime returns the accumulated service time of the link.
func (l *Link) BusyTime() time.Duration { return l.busy }

// Transfers returns the number of transfers served.
func (l *Link) Transfers() int64 { return l.transfers }

// Faults returns the number of transfers failed by the fault hook.
func (l *Link) Faults() int64 { return l.faults }

// Direction returns the link's direction.
func (l *Link) Direction() Direction { return l.dir }
