package bus

import (
	"fmt"
	"testing"
	"time"

	"robustdb/internal/sim"
)

func TestDirectionString(t *testing.T) {
	if HostToDevice.String() != "H2D" || DeviceToHost.String() != "D2H" {
		t.Fatal("direction labels wrong")
	}
	if Direction(9).String() != "dir(9)" {
		t.Fatal("unknown direction label wrong")
	}
}

func TestTransferTiming(t *testing.T) {
	s := sim.New()
	b := New(s, Config{Bandwidth: 1000, Latency: 10 * time.Millisecond}) // 1000 B/s
	var done time.Duration
	s.Spawn("t", func(p *sim.Proc) {
		b.Transfer(p, HostToDevice, 500)
		done = p.Now()
	})
	s.Run()
	want := 10*time.Millisecond + 500*time.Millisecond
	if done != want {
		t.Fatalf("done = %v, want %v", done, want)
	}
	l := b.Link(HostToDevice)
	if l.Bytes() != 500 || l.Transfers() != 1 || l.BusyTime() != want {
		t.Fatalf("accounting: bytes=%d n=%d busy=%v", l.Bytes(), l.Transfers(), l.BusyTime())
	}
	if l.Direction() != HostToDevice {
		t.Fatal("direction wrong")
	}
	if b.Link(DeviceToHost).Bytes() != 0 {
		t.Fatal("other direction must be untouched")
	}
}

func TestTransferFIFOQueueing(t *testing.T) {
	s := sim.New()
	b := New(s, Config{Bandwidth: 1000, Latency: 0})
	var first, second time.Duration
	s.Spawn("a", func(p *sim.Proc) {
		b.Transfer(p, HostToDevice, 1000) // 1s
		first = p.Now()
	})
	s.Spawn("b", func(p *sim.Proc) {
		b.Transfer(p, HostToDevice, 1000) // queued behind a
		second = p.Now()
	})
	s.Run()
	if first != time.Second || second != 2*time.Second {
		t.Fatalf("first=%v second=%v", first, second)
	}
}

func TestDirectionsIndependent(t *testing.T) {
	s := sim.New()
	b := New(s, Config{Bandwidth: 1000, Latency: 0})
	var up, down time.Duration
	s.Spawn("up", func(p *sim.Proc) {
		b.Transfer(p, HostToDevice, 1000)
		up = p.Now()
	})
	s.Spawn("down", func(p *sim.Proc) {
		b.Transfer(p, DeviceToHost, 1000)
		down = p.Now()
	})
	s.Run()
	// Full duplex: both finish at 1s.
	if up != time.Second || down != time.Second {
		t.Fatalf("up=%v down=%v, want 1s both", up, down)
	}
}

func TestZeroAndNegativeTransfers(t *testing.T) {
	s := sim.New()
	b := New(s, Config{Bandwidth: 1000, Latency: time.Second})
	var done time.Duration
	var recovered interface{}
	s.Spawn("t", func(p *sim.Proc) {
		b.Transfer(p, HostToDevice, 0)
		done = p.Now()
		defer func() { recovered = recover() }()
		b.Transfer(p, HostToDevice, -1)
	})
	s.Run()
	if done != 0 {
		t.Fatal("zero transfer should be free")
	}
	if recovered == nil {
		t.Fatal("negative transfer should panic")
	}
	if b.Link(HostToDevice).Transfers() != 0 {
		t.Fatal("zero transfer must not be counted")
	}
}

func TestDuration(t *testing.T) {
	s := sim.New()
	b := New(s, Config{Bandwidth: 2000, Latency: 5 * time.Millisecond})
	if d := b.Duration(HostToDevice, 1000); d != 5*time.Millisecond+500*time.Millisecond {
		t.Fatalf("Duration = %v", d)
	}
	if d := b.Duration(DeviceToHost, 0); d != 0 {
		t.Fatalf("zero Duration = %v", d)
	}
}

func TestBadConfigPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(sim.New(), Config{Bandwidth: 0})
}

// TryTransfer without a hook behaves exactly like Transfer (the fault-free
// baseline must be untouched by the fault-tolerance plumbing).
func TestTryTransferWithoutHook(t *testing.T) {
	s := sim.New()
	b := New(s, Config{Bandwidth: 1000, Latency: 10 * time.Millisecond})
	var done time.Duration
	s.Spawn("t", func(p *sim.Proc) {
		if err := b.TryTransfer(p, HostToDevice, 500); err != nil {
			t.Errorf("hookless TryTransfer failed: %v", err)
		}
		done = p.Now()
	})
	s.Run()
	want := 10*time.Millisecond + 500*time.Millisecond
	if done != want {
		t.Fatalf("done = %v, want %v (same as Transfer)", done, want)
	}
	l := b.Link(HostToDevice)
	if l.Bytes() != 500 || l.Transfers() != 1 || l.Faults() != 0 {
		t.Fatalf("accounting: bytes=%d n=%d faults=%d", l.Bytes(), l.Transfers(), l.Faults())
	}
}

// A hook failure charges only the setup latency, counts a fault, and moves
// no payload bytes; the infallible Transfer path never consults the hook.
func TestTransferHookFault(t *testing.T) {
	s := sim.New()
	b := New(s, Config{Bandwidth: 1000, Latency: 10 * time.Millisecond})
	fail := true
	var hookCalls int
	b.SetTransferHook(func(d Direction, n int64) error {
		hookCalls++
		if d != HostToDevice || n != 500 {
			t.Errorf("hook saw d=%v n=%d", d, n)
		}
		if fail {
			return fmt.Errorf("injected")
		}
		return nil
	})
	var failAt, okAt time.Duration
	s.Spawn("t", func(p *sim.Proc) {
		if err := b.TryTransfer(p, HostToDevice, 500); err == nil {
			t.Error("hook failure not surfaced")
		}
		failAt = p.Now()
		fail = false
		if err := b.TryTransfer(p, HostToDevice, 500); err != nil {
			t.Errorf("passing hook failed transfer: %v", err)
		}
		okAt = p.Now()
		b.Transfer(p, HostToDevice, 500) // infallible path skips the hook
	})
	s.Run()
	if failAt != 10*time.Millisecond {
		t.Fatalf("failed transfer took %v, want latency only", failAt)
	}
	if okAt != failAt+10*time.Millisecond+500*time.Millisecond {
		t.Fatalf("retry finished at %v", okAt)
	}
	if hookCalls != 2 {
		t.Fatalf("hook consulted %d times, want 2 (Transfer must skip it)", hookCalls)
	}
	l := b.Link(HostToDevice)
	if l.Faults() != 1 || l.Transfers() != 2 || l.Bytes() != 1000 {
		t.Fatalf("accounting: faults=%d n=%d bytes=%d", l.Faults(), l.Transfers(), l.Bytes())
	}
	if l.BusyTime() != 10*time.Millisecond+2*(10*time.Millisecond+500*time.Millisecond) {
		t.Fatalf("busy time %v", l.BusyTime())
	}
}
