// Package placer implements the compile-time operator placement heuristics
// of the paper: CPU-Only and GPU-Preferred baselines, the Critical Path
// iterative-refinement optimizer CoGaDB uses by default (Appendix D), and
// Data-Driven placement (§3), which follows the cache contents established
// by the data placement manager.
//
// All of these fix the full placement before the query runs; the engine's
// fault tolerance may still move individual aborted operators to the CPU,
// but successors keep their compile-time processor (Figure 8, left).
package placer

import (
	"time"

	"robustdb/internal/cost"
	"robustdb/internal/exec"
	"robustdb/internal/plan"
)

// CPUOnly places every operator on the host.
type CPUOnly struct{}

// Name returns "cpu-only".
func (CPUOnly) Name() string { return "cpu-only" }

// CompileTime assigns every node to the CPU.
func (CPUOnly) CompileTime(_ *exec.Engine, p *plan.Plan) map[int]cost.ProcKind {
	return uniform(p, cost.CPU)
}

// RunTime is never called for compile-time strategies.
func (CPUOnly) RunTime(*exec.Engine, *plan.Node, []*exec.Value) cost.ProcKind { return cost.CPU }

// GPUPreferred places every operator on the co-processor and relies on the
// engine's fault handler to fall back per operator ("GPU Preferred" /
// "GPU Only" in the paper's experiments, §6.2).
type GPUPreferred struct{}

// Name returns "gpu-only".
func (GPUPreferred) Name() string { return "gpu-only" }

// CompileTime assigns every node to the GPU.
func (GPUPreferred) CompileTime(_ *exec.Engine, p *plan.Plan) map[int]cost.ProcKind {
	return uniform(p, cost.GPU)
}

// RunTime is never called for compile-time strategies.
func (GPUPreferred) RunTime(*exec.Engine, *plan.Node, []*exec.Value) cost.ProcKind { return cost.GPU }

// DataDriven is the compile-time data-driven placement of §3: operators are
// chained onto the co-processor from the leaves exactly as long as every
// base input is cached; once the chain breaks, the rest of the query stays
// on the CPU (§3.3).
type DataDriven struct{}

// Name returns "data-driven".
func (DataDriven) Name() string { return "data-driven" }

// CompileTime pushes operators to their data.
func (DataDriven) CompileTime(e *exec.Engine, p *plan.Plan) map[int]cost.ProcKind {
	placement := make(map[int]cost.ProcKind, len(p.Nodes()))
	for _, n := range p.Nodes() { // post-order: children first
		kind := cost.GPU
		for _, id := range n.Op.BaseColumns() {
			if !e.Cache.Contains(id) {
				kind = cost.CPU
				break
			}
		}
		for _, c := range n.Children {
			if placement[c.ID()] == cost.CPU {
				kind = cost.CPU
				break
			}
		}
		placement[n.ID()] = kind
	}
	return placement
}

// RunTime is never called for compile-time strategies.
func (DataDriven) RunTime(*exec.Engine, *plan.Node, []*exec.Value) cost.ProcKind { return cost.CPU }

func uniform(p *plan.Plan, kind cost.ProcKind) map[int]cost.ProcKind {
	placement := make(map[int]cost.ProcKind, len(p.Nodes()))
	for _, n := range p.Nodes() {
		placement[n.ID()] = kind
	}
	return placement
}

// CriticalPath is CoGaDB's default iterative-refinement optimizer
// (Appendix D): starting from an all-CPU plan, it greedily moves one leaf
// path (the chain from a leaf to its first n-ary ancestor) to the
// co-processor per iteration as long as the estimated response time
// improves. A binary operator runs on the co-processor only if both children
// do, which keeps transfers off the critical path.
type CriticalPath struct {
	// MaxIterations bounds the refinement; 0 means one pass per leaf.
	MaxIterations int
}

// Name returns "critical-path".
func (CriticalPath) Name() string { return "critical-path" }

// RunTime is never called for compile-time strategies.
func (CriticalPath) RunTime(*exec.Engine, *plan.Node, []*exec.Value) cost.ProcKind { return cost.CPU }

// CompileTime runs the iterative refinement.
func (c CriticalPath) CompileTime(e *exec.Engine, p *plan.Plan) map[int]cost.ProcKind {
	if err := p.EstimateSizes(e.Cat); err != nil {
		e.NoteCatalogError(err)
		return uniform(p, cost.CPU)
	}
	leaves := p.Leaves()
	onGPU := make(map[int]bool)
	bestPlacement := derivePlacement(p, onGPU)
	bestTime := estimateResponse(e, p, bestPlacement)
	maxIter := c.MaxIterations
	if maxIter <= 0 {
		maxIter = len(leaves)
	}
	// Beam of width one (Appendix D): each iteration commits the single
	// additional leaf path that yields the fastest plan at that level —
	// even when that level is worse than the previous one, because deeper
	// levels may recover (a binary operator joins the GPU only once both
	// children are there). The best plan seen overall wins.
	for iter := 0; iter < maxIter; iter++ {
		levelLeaf := -1
		var levelTime time.Duration
		for _, leaf := range leaves {
			if onGPU[leaf.ID()] {
				continue
			}
			onGPU[leaf.ID()] = true
			t := estimateResponse(e, p, derivePlacement(p, onGPU))
			delete(onGPU, leaf.ID())
			if levelLeaf < 0 || t < levelTime {
				levelTime = t
				levelLeaf = leaf.ID()
			}
		}
		if levelLeaf < 0 {
			break // every leaf path is on the co-processor
		}
		onGPU[levelLeaf] = true
		if levelTime < bestTime {
			bestTime = levelTime
			bestPlacement = derivePlacement(p, onGPU)
		}
	}
	return bestPlacement
}

// derivePlacement expands a set of GPU leaves into a full placement: a leaf
// path runs on the GPU up to the first operator whose children are not all
// on the GPU.
func derivePlacement(p *plan.Plan, gpuLeaves map[int]bool) map[int]cost.ProcKind {
	placement := make(map[int]cost.ProcKind, len(p.Nodes()))
	for _, n := range p.Nodes() {
		kind := cost.GPU
		if len(n.Children) == 0 {
			if !gpuLeaves[n.ID()] {
				kind = cost.CPU
			}
		} else {
			for _, c := range n.Children {
				if placement[c.ID()] == cost.CPU {
					kind = cost.CPU
					break
				}
			}
		}
		placement[n.ID()] = kind
	}
	return placement
}

// estimateResponse predicts the plan's response time under a placement:
// node finish = max child finish + boundary transfers + operator estimate,
// with a final copy-back if the root runs on the co-processor.
func estimateResponse(e *exec.Engine, p *plan.Plan, placement map[int]cost.ProcKind) time.Duration {
	finish := make(map[int]time.Duration, len(p.Nodes()))
	busSec := e.Params.BusBandwidth
	transfer := func(bytes int64) time.Duration {
		return e.Params.BusLatency + time.Duration(float64(bytes)/busSec*float64(time.Second))
	}
	for _, n := range p.Nodes() {
		kind := placement[n.ID()]
		var start time.Duration
		var moved int64
		for _, c := range n.Children {
			if f := finish[c.ID()]; f > start {
				start = f
			}
			if placement[c.ID()] != kind {
				moved += c.EstOutBytes
			}
		}
		if kind == cost.GPU {
			// Uncached base columns must be shipped to the device.
			for _, id := range n.Op.BaseColumns() {
				if !e.Cache.Contains(id) {
					if b, err := e.Cat.ColumnBytes(id); err == nil {
						moved += b
					} else {
						e.NoteCatalogError(err)
					}
				}
			}
		}
		op := e.Learner.Estimate(n.Op.Class(), kind, cost.Work(n.EstInBytes, n.EstOutBytes))
		if moved > 0 {
			start += transfer(moved)
		}
		finish[n.ID()] = start + op
	}
	total := finish[p.Root.ID()]
	if placement[p.Root.ID()] == cost.GPU {
		total += transfer(p.Root.EstOutBytes)
	}
	return total
}
