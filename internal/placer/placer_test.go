package placer

import (
	"testing"

	"robustdb/internal/column"
	"robustdb/internal/cost"
	"robustdb/internal/engine"
	"robustdb/internal/exec"
	"robustdb/internal/expr"
	"robustdb/internal/plan"
	"robustdb/internal/table"
)

func testCatalog() *table.Catalog {
	n := 50000
	fk := make([]int64, n)
	qty := make([]int64, n)
	for i := range fk {
		fk[i] = int64(i % 100)
		qty[i] = int64(i % 50)
	}
	dk := make([]int64, 100)
	attr := make([]int64, 100)
	for i := range dk {
		dk[i] = int64(i)
		attr[i] = int64(i % 10)
	}
	cat := table.NewCatalog()
	cat.MustRegister(table.MustNew("fact",
		column.NewInt64("fk", fk),
		column.NewInt64("qty", qty),
	))
	cat.MustRegister(table.MustNew("dim",
		column.NewInt64("dk", dk),
		column.NewInt64("attr", attr),
	))
	return cat
}

func starPlan() *plan.Plan {
	dim := plan.Scan("dim", []string{"dk"}, expr.NewCmp("attr", expr.LT, 5))
	fact := plan.Scan("fact", []string{"fk", "qty"}, expr.NewCmp("qty", expr.GE, 10))
	j := plan.Join(dim, fact, "dk", "fk", nil, []string{"qty"})
	a := plan.Aggregate(j, nil, []engine.AggSpec{{Func: engine.Sum, Col: "qty", As: "s"}})
	return plan.New(a)
}

func newEngine(cacheBytes int64) *exec.Engine {
	return exec.New(testCatalog(), exec.Config{CacheBytes: cacheBytes, HeapBytes: 1 << 30})
}

func TestUniformPlacers(t *testing.T) {
	e := newEngine(1 << 20)
	pl := starPlan()
	cpu := CPUOnly{}.CompileTime(e, pl)
	gpu := GPUPreferred{}.CompileTime(e, pl)
	if len(cpu) != len(pl.Nodes()) || len(gpu) != len(pl.Nodes()) {
		t.Fatal("placement incomplete")
	}
	for _, n := range pl.Nodes() {
		if cpu[n.ID()] != cost.CPU {
			t.Fatal("cpu-only placed a node off-CPU")
		}
		if gpu[n.ID()] != cost.GPU {
			t.Fatal("gpu-preferred placed a node off-GPU")
		}
	}
	if (CPUOnly{}).Name() != "cpu-only" || (GPUPreferred{}).Name() != "gpu-only" {
		t.Fatal("names wrong")
	}
	if (CPUOnly{}).RunTime(e, pl.Root, nil) != cost.CPU {
		t.Fatal("cpu-only runtime fallback wrong")
	}
	if (GPUPreferred{}).RunTime(e, pl.Root, nil) != cost.GPU {
		t.Fatal("gpu runtime fallback wrong")
	}
}

func TestDataDrivenFollowsCache(t *testing.T) {
	pl := starPlan()
	dimScan := pl.Leaves()[0]
	factScan := pl.Leaves()[1]

	// Nothing cached: everything on CPU.
	e := newEngine(1 << 30)
	placement := DataDriven{}.CompileTime(e, pl)
	for _, n := range pl.Nodes() {
		if placement[n.ID()] != cost.CPU {
			t.Fatal("with empty cache everything must run on CPU")
		}
	}

	// Only the dimension's columns cached: dim scan on GPU, the join (one
	// CPU child) and everything above on CPU.
	e = newEngine(1 << 30)
	for _, id := range dimScan.Op.BaseColumns() {
		b, _ := e.Cat.ColumnBytes(id)
		e.Cache.Insert(id, b)
	}
	placement = DataDriven{}.CompileTime(e, pl)
	if placement[dimScan.ID()] != cost.GPU {
		t.Fatal("dim scan should run on GPU (inputs cached)")
	}
	if placement[factScan.ID()] != cost.CPU {
		t.Fatal("fact scan should run on CPU (inputs not cached)")
	}
	if placement[pl.Root.ID()] != cost.CPU {
		t.Fatal("chain must break at the join")
	}

	// Everything cached: whole plan on GPU.
	e = newEngine(1 << 30)
	for _, id := range pl.BaseColumns() {
		b, _ := e.Cat.ColumnBytes(id)
		e.Cache.Insert(id, b)
	}
	placement = DataDriven{}.CompileTime(e, pl)
	for _, n := range pl.Nodes() {
		if placement[n.ID()] != cost.GPU {
			t.Fatalf("node %d should be on GPU", n.ID())
		}
	}
	if (DataDriven{}).Name() != "data-driven" {
		t.Fatal("name wrong")
	}
	if (DataDriven{}).RunTime(e, pl.Root, nil) != cost.CPU {
		t.Fatal("runtime fallback wrong")
	}
}

func TestCriticalPathChainConstraint(t *testing.T) {
	e := newEngine(1 << 30)
	pl := starPlan()
	placement := CriticalPath{}.CompileTime(e, pl)
	if len(placement) != len(pl.Nodes()) {
		t.Fatal("placement incomplete")
	}
	// Constraint: a node is on GPU only if all children are.
	for _, n := range pl.Nodes() {
		if placement[n.ID()] == cost.GPU {
			for _, c := range n.Children {
				if placement[c.ID()] != cost.GPU {
					t.Fatal("critical path violated the chain constraint")
				}
			}
		}
	}
	if (CriticalPath{}).Name() != "critical-path" {
		t.Fatal("name wrong")
	}
	if (CriticalPath{}).RunTime(e, pl.Root, nil) != cost.CPU {
		t.Fatal("runtime fallback wrong")
	}
}

// With a hot cache the GPU is strictly better in the cost model, so the
// refinement should move at least one leaf path to the GPU.
func TestCriticalPathUsesGPUWhenProfitable(t *testing.T) {
	e := newEngine(1 << 30)
	pl := starPlan()
	for _, id := range pl.BaseColumns() {
		b, _ := e.Cat.ColumnBytes(id)
		e.Cache.Insert(id, b)
	}
	placement := CriticalPath{}.CompileTime(e, pl)
	gpuCount := 0
	for _, k := range placement {
		if k == cost.GPU {
			gpuCount++
		}
	}
	if gpuCount == 0 {
		t.Fatal("critical path should use the GPU when data is cached")
	}
}

// When transfers dwarf the speedup (cold cache, big columns), Critical Path
// must keep the big fact scan off the GPU.
func TestCriticalPathAvoidsExpensiveTransfers(t *testing.T) {
	e := newEngine(1 << 30) // cache empty → transfers charged in estimates
	pl := starPlan()
	placement := CriticalPath{}.CompileTime(e, pl)
	factScan := pl.Leaves()[1]
	if placement[factScan.ID()] == cost.GPU {
		t.Fatal("fact scan with cold cache should stay on CPU")
	}
}

func TestCriticalPathBadPlanFallsBackToCPU(t *testing.T) {
	e := newEngine(1 << 20)
	bad := plan.New(plan.Scan("missing", []string{"x"}, nil))
	placement := CriticalPath{}.CompileTime(e, bad)
	if placement[bad.Root.ID()] != cost.CPU {
		t.Fatal("unestimatable plan must fall back to CPU")
	}
}

func TestCriticalPathIterationCap(t *testing.T) {
	e := newEngine(1 << 30)
	pl := starPlan()
	for _, id := range pl.BaseColumns() {
		b, _ := e.Cat.ColumnBytes(id)
		e.Cache.Insert(id, b)
	}
	// One iteration can move at most one leaf path.
	placement := CriticalPath{MaxIterations: 1}.CompileTime(e, pl)
	gpuLeaves := 0
	for _, l := range pl.Leaves() {
		if placement[l.ID()] == cost.GPU {
			gpuLeaves++
		}
	}
	if gpuLeaves > 1 {
		t.Fatalf("iteration cap violated: %d leaf paths moved", gpuLeaves)
	}
}
