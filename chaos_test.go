package robustdb

import (
	"reflect"
	"testing"
	"time"

	"robustdb/internal/exec"
	"robustdb/internal/placer"
	"robustdb/internal/sim"
)

// chaosDB is the SSB database the chaos suite runs against — small enough
// that every schedule finishes fast, large enough that queries actually move
// data over the simulated bus.
func chaosDB() *DB {
	return OpenSSB(SSBConfig{SF: 1, RowsPerSF: 4000, Seed: 2})
}

// chaosSchedules is the fault matrix: each injector kind alone, then all of
// them combined. Every schedule is seeded, so a failure reproduces exactly.
func chaosSchedules() map[string]FaultConfig {
	return map[string]FaultConfig{
		"alloc-faults":    {Seed: 101, AllocFailRate: 0.3},
		"transfer-faults": {Seed: 102, TransferFailRate: 0.3},
		"device-resets":   {Seed: 103, ResetCount: 4, ResetMeanInterval: 500 * time.Microsecond},
		"slow-kernels":    {Seed: 104, SlowRate: 0.5, SlowFactor: 6},
		"combined": {
			Seed: 105, AllocFailRate: 0.15, TransferFailRate: 0.15,
			ResetCount: 2, ResetMeanInterval: time.Millisecond,
			SlowRate: 0.2,
		},
	}
}

// Under every fault schedule, every SSB query either completes with a result
// byte-identical to the fault-free reference or fails cleanly — and in both
// cases the device heap ends the run empty.
func TestChaosQueriesExactOrFailClean(t *testing.T) {
	db := chaosDB()
	queries := SSBQueries()
	// Fault-free references from the bulk kernels (results are placement-
	// independent by construction; this pins that property under faults).
	refs := make(map[string]*Batch, len(queries))
	for _, q := range queries {
		ref, err := evalPlan(db.cat, q.Plan)
		if err != nil {
			t.Fatalf("reference %s: %v", q.Name, err)
		}
		refs[q.Name] = ref
	}
	dev := db.DeviceForWorkingSet(0.5)
	for name, cfg := range chaosSchedules() {
		t.Run(name, func(t *testing.T) {
			e := exec.New(db.Catalog(), Device{
				CacheBytes: dev.CacheBytes,
				HeapBytes:  dev.HeapBytes,
				Faults:     NewFaultInjector(cfg),
			})
			completed, failed := 0, 0
			e.Sim.Spawn("chaos", func(p *sim.Proc) {
				for _, q := range queries {
					v, _, err := e.RunQuery(p, q.Plan, placer.GPUPreferred{})
					if err != nil {
						failed++ // clean failure is acceptable; leaks are not
						continue
					}
					completed++
					if !reflect.DeepEqual(v.Batch, refs[q.Name]) {
						t.Errorf("%s: result diverged from fault-free reference", q.Name)
					}
				}
			})
			e.Sim.Run()
			if completed+failed != len(queries) {
				t.Fatalf("ran %d+%d of %d queries", completed, failed, len(queries))
			}
			if completed == 0 {
				t.Fatal("every query failed — retry/degradation ladder broken")
			}
			if e.Heap.Used() != 0 {
				t.Fatalf("leaked %d device-heap bytes (completed=%d failed=%d)",
					e.Heap.Used(), completed, failed)
			}
		})
	}
}

// The same chaos matrix through the multi-user workload runner: the run
// drains, failures are counted rather than fatal, and nothing leaks.
func TestChaosWorkloadsDrainCleanly(t *testing.T) {
	db := chaosDB()
	queries := SSBQueries()
	dev := db.DeviceForWorkingSet(0.5)
	for name, cfg := range chaosSchedules() {
		t.Run(name, func(t *testing.T) {
			run := dev
			run.Faults = NewFaultInjector(cfg)
			run.QueryDeadline = 500 * time.Millisecond // rescue stuck queries
			e, res, err := db.RunWorkload(run, DataDrivenChopping(), Workload{
				Queries:         queries,
				Users:           4,
				TotalQueries:    26,
				ContinueOnError: true,
			})
			if err != nil {
				t.Fatalf("workload aborted: %v", err)
			}
			if res.QueriesRun+res.Failures != 26 {
				t.Fatalf("completed=%d failed=%d, want 26 total", res.QueriesRun, res.Failures)
			}
			if e.Heap.Used() != 0 {
				t.Fatalf("leaked %d device-heap bytes", e.Heap.Used())
			}
		})
	}
}

// Robustness bound: Data-Driven Chopping under a hostile fault schedule
// stays within a small factor of the fault-free CPU-only baseline — graceful
// degradation, not collapse.
func TestChaosDegradationBounded(t *testing.T) {
	db := chaosDB()
	queries := SSBQueries()
	dev := db.DeviceForWorkingSet(0.5)
	spec := Workload{Queries: queries, Users: 4, TotalQueries: 26}

	_, cpu, err := db.RunWorkload(dev, CPUOnly(), spec)
	if err != nil {
		t.Fatal(err)
	}

	chaosSpec := spec
	chaosSpec.ContinueOnError = true
	run := dev
	run.Faults = NewFaultInjector(FaultConfig{
		Seed: 7, AllocFailRate: 0.2, TransferFailRate: 0.2,
		ResetCount: 3, ResetMeanInterval: time.Millisecond,
	})
	e, ddc, err := db.RunWorkload(run, DataDrivenChopping(), chaosSpec)
	if err != nil {
		t.Fatal(err)
	}
	if ddc.QueriesRun+ddc.Failures != 26 {
		t.Fatalf("chaos run lost queries: %d+%d", ddc.QueriesRun, ddc.Failures)
	}
	// The bound: retry backoffs, re-uploads after resets, and breaker
	// cooldowns cost time, but the ladder must keep the workload within a
	// small constant of just staying on the CPU.
	if limit := 3 * cpu.WorkloadTime; ddc.WorkloadTime > limit {
		t.Fatalf("DDC under faults took %v, more than 3× the CPU-only %v",
			ddc.WorkloadTime, cpu.WorkloadTime)
	}
	if e.Heap.Used() != 0 {
		t.Fatalf("leaked %d device-heap bytes", e.Heap.Used())
	}
}

// Chaos runs are reproducible: the same seed yields identical makespans and
// fault counters; the injector schedule is part of the deterministic sim.
func TestChaosDeterminism(t *testing.T) {
	db := chaosDB()
	dev := db.DeviceForWorkingSet(0.5)
	spec := Workload{
		Queries: SSBQueries(), Users: 4, TotalQueries: 26,
		ContinueOnError: true,
	}
	runOnce := func() Result {
		run := dev
		run.Faults = NewFaultInjector(FaultConfig{
			Seed: 99, AllocFailRate: 0.2, TransferFailRate: 0.2,
			ResetCount: 2, ResetMeanInterval: time.Millisecond,
		})
		_, res, err := db.RunWorkload(run, DataDrivenChopping(), spec)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := runOnce(), runOnce()
	if a.WorkloadTime != b.WorkloadTime {
		t.Fatalf("makespans diverged: %v vs %v", a.WorkloadTime, b.WorkloadTime)
	}
	if a.AllocFaults != b.AllocFaults || a.TransferFaults != b.TransferFaults ||
		a.DeviceResets != b.DeviceResets || a.Retries != b.Retries ||
		a.Failures != b.Failures || a.BreakerTrips != b.BreakerTrips {
		t.Fatalf("fault counters diverged:\n%+v\n%+v", a, b)
	}
}

// Device resets against the data-driven strategies: the OnReset hook re-pins
// the placement-managed columns, so the strategy keeps using the device after
// recovery instead of silently degrading to CPU-only forever.
func TestChaosResetRepinsDataPlacement(t *testing.T) {
	db := chaosDB()
	dev := db.DeviceForWorkingSet(1.0)
	run := dev
	run.Faults = NewFaultInjector(FaultConfig{
		Seed:    11,
		ResetAt: []time.Duration{2 * time.Millisecond},
	})
	e, res, err := db.RunWorkload(run, DataDrivenChopping(), Workload{
		Queries:         SSBQueries(),
		Users:           2,
		TotalQueries:    52, // long enough to straddle the reset
		ContinueOnError: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.DeviceResets != 1 {
		t.Fatalf("resets = %d, want 1 (run too short to reach the reset?)", res.DeviceResets)
	}
	if e.Cache.Len() == 0 {
		t.Fatal("cache empty after reset: OnReset re-pin did not run")
	}
	if res.GPUOperators == 0 {
		t.Fatal("no GPU operators after reset: device never came back")
	}
	if e.Heap.Used() != 0 {
		t.Fatalf("leaked %d device-heap bytes", e.Heap.Used())
	}
}
