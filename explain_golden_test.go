package robustdb

// Golden-file test of the EXPLAIN plan document: the planner and the size
// estimator are deterministic over a seeded catalog, so the JSON payload for
// a pinned statement must stay byte-identical run to run. The golden file is
// also the committed example of the EXPLAIN JSON schema — a schema change
// shows up as a reviewable diff here. Regenerate after an intentional change
// with:
//
//	go test -run TestExplainGolden -update-golden .

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

// goldenExplainSQL joins, filters in the code domain, aggregates over RLE-able
// group keys, and sorts with a limit — one statement that exercises every node
// kind the document can carry.
const goldenExplainSQL = "EXPLAIN SELECT c_nation, SUM(lo_revenue) AS rev " +
	"FROM lineorder, customer " +
	"WHERE lo_custkey = c_custkey AND lo_discount BETWEEN 1 AND 3 " +
	"GROUP BY c_nation ORDER BY rev DESC LIMIT 5"

func goldenExplainPayload(t *testing.T) []byte {
	t.Helper()
	db := OpenSSB(SSBConfig{SF: 1, RowsPerSF: 2000, Seed: 42}).Compressed()
	doc, err := db.ExplainSQL(goldenExplainSQL)
	if err != nil {
		t.Fatal(err)
	}
	data, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	return append(data, '\n')
}

func TestExplainGolden(t *testing.T) {
	got := goldenExplainPayload(t)
	path := filepath.Join("testdata", "explain_golden.json")
	if *updateGolden {
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %s (%d bytes)", path, len(got))
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (regenerate with -update-golden)", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("explain document drifted from %s (%d vs %d bytes); if intended, regenerate with -update-golden",
			path, len(got), len(want))
	}
}

// TestExplainGoldenShape proves the golden document carries what the CI smoke
// asserts over HTTP: a versioned tree whose scan nodes each report their
// compression mode, with at least one scan on an actually-compressed column.
func TestExplainGoldenShape(t *testing.T) {
	var doc struct {
		Version int             `json:"version"`
		Root    json.RawMessage `json:"root"`
	}
	if err := json.Unmarshal(goldenExplainPayload(t), &doc); err != nil {
		t.Fatal(err)
	}
	if doc.Version != 1 {
		t.Fatalf("version = %d, want 1", doc.Version)
	}
	type node struct {
		Kind        string `json:"kind"`
		Compression string `json:"compression"`
		Placement   string `json:"placement"`
		Children    []node `json:"children"`
	}
	var root node
	if err := json.Unmarshal(doc.Root, &root); err != nil {
		t.Fatal(err)
	}
	var scans, compressed int
	var walk func(n node)
	walk = func(n node) {
		if n.Placement == "" {
			t.Errorf("%s node missing placement", n.Kind)
		}
		if n.Kind == "scan" {
			scans++
			if n.Compression == "" {
				t.Errorf("scan node missing compression mode")
			}
			if n.Compression != "plain" {
				compressed++
			}
		}
		for _, c := range n.Children {
			walk(c)
		}
	}
	walk(root)
	if scans == 0 {
		t.Fatal("no scan nodes in golden document")
	}
	if compressed == 0 {
		t.Fatal("no scan over a compressed column: the golden catalog should be .Compressed()")
	}
}
