module robustdb

go 1.22
