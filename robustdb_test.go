package robustdb

import (
	"testing"

	"robustdb/internal/column"
	"robustdb/internal/engine"
	"robustdb/internal/plan"
	"robustdb/internal/table"
)

func testDB() *DB {
	return OpenSSB(SSBConfig{SF: 1, RowsPerSF: 4000, Seed: 2})
}

func TestOpenAndDeviceSizing(t *testing.T) {
	db := testDB()
	if db.TotalBytes() <= 0 {
		t.Fatal("database should have bytes")
	}
	dev := db.DeviceForWorkingSet(0.5)
	if dev.CacheBytes != db.TotalBytes()/2 || dev.HeapBytes != dev.CacheBytes*2 {
		t.Fatalf("device sizing wrong: %+v", dev)
	}
	if db.Catalog() == nil {
		t.Fatal("catalog accessor nil")
	}
	tp := OpenTPCH(TPCHConfig{SF: 1, RowsPerSF: 4000, Seed: 2})
	if tp.TotalBytes() <= 0 {
		t.Fatal("tpch database empty")
	}
}

func TestRegisterCustomTable(t *testing.T) {
	db := New()
	tbl := table.MustNew("metrics",
		column.NewInt64("host", []int64{1, 2, 1}),
		column.NewFloat64("load", []float64{0.3, 0.9, 0.5}),
	)
	if err := db.Register(tbl); err != nil {
		t.Fatal(err)
	}
	if err := db.Register(tbl); err == nil {
		t.Fatal("duplicate register should error")
	}
	p := plan.New(plan.Aggregate(
		plan.Scan("metrics", []string{"host", "load"}, nil),
		[]string{"host"},
		[]engine.AggSpec{{Func: engine.Avg, Col: "load", As: "avg_load"}}))
	out, st, err := db.Query(db.DeviceForWorkingSet(1), CPUOnly(), p)
	if err != nil {
		t.Fatal(err)
	}
	if out.NumRows() != 2 {
		t.Fatalf("rows = %d", out.NumRows())
	}
	if st.Latency <= 0 {
		t.Fatal("latency should be positive")
	}
}

func TestQueryAcrossStrategies(t *testing.T) {
	db := testDB()
	p, err := SSBQuery("Q1.1")
	if err != nil {
		t.Fatal(err)
	}
	dev := db.DeviceForWorkingSet(1)
	var want float64
	for i, strat := range AllStrategies() {
		out, _, err := db.Query(dev, strat, p)
		if err != nil {
			t.Fatalf("%s: %v", strat.Label, err)
		}
		got := out.MustColumn("revenue").(*column.Float64Column).Values[0]
		if i == 0 {
			want = got
			continue
		}
		if got != want {
			t.Fatalf("%s: revenue %v, want %v", strat.Label, got, want)
		}
	}
}

func TestQueryErrors(t *testing.T) {
	db := testDB()
	if _, err := SSBQuery("Q9.9"); err == nil {
		t.Fatal("expected unknown SSB query error")
	}
	if _, err := TPCHQuery("Q1"); err == nil {
		t.Fatal("expected unknown TPC-H query error")
	}
	bad := plan.New(plan.Scan("missing", []string{"x"}, nil))
	if _, _, err := db.Query(db.DeviceForWorkingSet(1), CPUOnly(), bad); err == nil {
		t.Fatal("expected query error")
	}
}

func TestQueryCatalogs(t *testing.T) {
	if len(SSBQueries()) != 13 || len(TPCHQueries()) != 6 {
		t.Fatal("query catalogues wrong")
	}
	if p, err := TPCHQuery("Q6"); err != nil || p == nil {
		t.Fatal("Q6 lookup failed")
	}
}

func TestRunWorkloadFacade(t *testing.T) {
	db := testDB()
	e, res, err := db.RunWorkload(db.DeviceForWorkingSet(0.5), DataDrivenChopping(), Workload{
		Queries:      SSBQueries(),
		Users:        4,
		TotalQueries: 13,
	})
	if err != nil {
		t.Fatal(err)
	}
	if e == nil || res.QueriesRun != 13 || res.WorkloadTime <= 0 {
		t.Fatalf("workload result wrong: %+v", res)
	}
}

func TestRegenerateFigureFacade(t *testing.T) {
	figs, err := RegenerateFigure("fig16", FigureOptions{RowsPerSF: 2000, Reps: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(figs) != 1 || figs[0].ID != "fig16" {
		t.Fatalf("fig16 regeneration wrong")
	}
	if _, err := RegenerateFigure("fig99", FigureOptions{}); err == nil {
		t.Fatal("expected unknown figure error")
	}
	if len(FigureIDs()) != 27 {
		t.Fatalf("figure ids = %d", len(FigureIDs()))
	}
}
