package robustdb

// Golden-file test of the Chrome trace export: the engine is a deterministic
// discrete-event simulation, so a fixed seed and workload must produce a
// byte-identical trace_event file on every run and platform. Regenerate
// after an intentional schema or engine change with:
//
//	go test -run TestChromeTraceGolden -update-golden .

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var updateGolden = flag.Bool("update-golden", false, "rewrite testdata golden files")

// goldenTraceRun executes the pinned workload and returns its tracer.
func goldenTraceRun(t *testing.T) *Tracer {
	t.Helper()
	db := OpenSSB(SSBConfig{SF: 1, RowsPerSF: 2000, Seed: 42})
	tr := NewTracer(0)
	dev := db.DeviceForWorkingSet(0.5)
	dev.Tracer = tr
	spec := Workload{Queries: SSBQueries()[:3], Users: 2}
	if _, _, err := db.RunWorkload(dev, DataDrivenChopping(), spec); err != nil {
		t.Fatal(err)
	}
	return tr
}

func TestChromeTraceGolden(t *testing.T) {
	tr := goldenTraceRun(t)
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, tr.Spans(), tr.Events()); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join("testdata", "trace_golden.json")
	if *updateGolden {
		if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %s (%d bytes)", path, buf.Len())
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (regenerate with -update-golden)", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Fatalf("chrome trace drifted from %s (%d vs %d bytes); if intended, regenerate with -update-golden",
			path, buf.Len(), len(want))
	}
}

// TestChromeTraceRoundTrip proves the golden file is loadable: parsing the
// export back yields exactly the spans and events the tracer recorded.
func TestChromeTraceRoundTrip(t *testing.T) {
	tr := goldenTraceRun(t)
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, tr.Spans(), tr.Events()); err != nil {
		t.Fatal(err)
	}
	spans, events, err := ReadChromeTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(spans) != len(tr.Spans()) || len(events) != len(tr.Events()) {
		t.Fatalf("round trip: %d/%d spans, %d/%d events",
			len(spans), len(tr.Spans()), len(events), len(tr.Events()))
	}
}

// TestTraceDeterminism re-runs the pinned workload and demands bit-identical
// traces: the foundation the golden file (and every replay debugging
// session) rests on.
func TestTraceDeterminism(t *testing.T) {
	var runs [2][]byte
	for i := range runs {
		tr := goldenTraceRun(t)
		var buf bytes.Buffer
		if err := WriteChromeTrace(&buf, tr.Spans(), tr.Events()); err != nil {
			t.Fatal(err)
		}
		runs[i] = buf.Bytes()
	}
	if !bytes.Equal(runs[0], runs[1]) {
		t.Fatal("two identical runs produced different traces")
	}
}
